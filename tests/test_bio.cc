/**
 * @file
 * MemBio / BioPair tests: FIFO semantics, peek/consume, compaction,
 * traffic accounting and the flush probe.
 */

#include <gtest/gtest.h>

#include "perf/probe.hh"
#include "ssl/bio.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

TEST(MemBio, FifoOrder)
{
    MemBio bio;
    bio.write(toBytes("hello "));
    bio.write(toBytes("world"));
    uint8_t buf[16];
    size_t n = bio.read(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, buf + n), "hello world");
    EXPECT_EQ(bio.available(), 0u);
}

TEST(MemBio, PartialReads)
{
    MemBio bio;
    bio.write(toBytes("abcdef"));
    uint8_t buf[2];
    EXPECT_EQ(bio.read(buf, 2), 2u);
    EXPECT_EQ(buf[0], 'a');
    EXPECT_EQ(bio.read(buf, 2), 2u);
    EXPECT_EQ(buf[0], 'c');
    EXPECT_EQ(bio.available(), 2u);
}

TEST(MemBio, ReadFromEmpty)
{
    MemBio bio;
    uint8_t buf[4];
    EXPECT_EQ(bio.read(buf, 4), 0u);
}

TEST(MemBio, PeekDoesNotConsume)
{
    MemBio bio;
    bio.write(toBytes("peekable"));
    uint8_t a[8], b[8];
    EXPECT_EQ(bio.peek(a, 8), 8u);
    EXPECT_EQ(bio.peek(b, 8), 8u);
    EXPECT_EQ(Bytes(a, a + 8), Bytes(b, b + 8));
    EXPECT_EQ(bio.available(), 8u);
    bio.consume(4);
    EXPECT_EQ(bio.available(), 4u);
    EXPECT_EQ(bio.peek(a, 8), 4u);
    EXPECT_EQ(a[0], 'a');
}

TEST(MemBio, ConsumeBeyondAvailableIsClamped)
{
    MemBio bio;
    bio.write(toBytes("xy"));
    bio.consume(100);
    EXPECT_EQ(bio.available(), 0u);
}

TEST(MemBio, TotalWrittenAccumulates)
{
    MemBio bio;
    bio.write(Bytes(100));
    uint8_t buf[50];
    bio.read(buf, 50);
    bio.write(Bytes(20));
    EXPECT_EQ(bio.totalWritten(), 120u);
    EXPECT_EQ(bio.available(), 70u);
}

TEST(MemBio, CompactionPreservesData)
{
    // Force many small reads over a large buffer so compaction (head
    // pruning) must trigger without corrupting the remainder.
    MemBio bio;
    Xoshiro256 rng(42);
    Bytes data = rng.bytes(100000);
    bio.write(data);
    Bytes out;
    uint8_t buf[777];
    while (bio.available()) {
        size_t n = bio.read(buf, sizeof(buf));
        append(out, buf, n);
    }
    EXPECT_EQ(out, data);
}

TEST(MemBio, InterleavedWriteRead)
{
    MemBio bio;
    Xoshiro256 rng(43);
    Bytes sent, received;
    uint8_t buf[64];
    for (int i = 0; i < 500; ++i) {
        Bytes chunk = rng.bytes(rng.nextBelow(40));
        bio.write(chunk);
        append(sent, chunk);
        size_t n = bio.read(buf, rng.nextBelow(sizeof(buf)));
        append(received, buf, n);
    }
    while (bio.available()) {
        size_t n = bio.read(buf, sizeof(buf));
        append(received, buf, n);
    }
    EXPECT_EQ(received, sent);
}

TEST(MemBio, WritevGathersSlicesInOrder)
{
    MemBio bio;
    Bytes a = toBytes("scatter");
    Bytes b = toBytes("-");
    Bytes c = toBytes("gather");
    ConstSpan iov[] = {ConstSpan{a.data(), a.size()},
                       ConstSpan{b.data(), b.size()},
                       ConstSpan{c.data(), c.size()}};
    EXPECT_TRUE(bio.writev(iov, 3));
    uint8_t buf[32];
    size_t n = bio.read(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, buf + n), "scatter-gather");
    EXPECT_EQ(bio.totalWritten(), 14u);
}

TEST(MemBio, WritevEmptyAndZeroLengthSlices)
{
    MemBio bio;
    EXPECT_TRUE(bio.writev(nullptr, 0));
    EXPECT_EQ(bio.available(), 0u);
    Bytes a = toBytes("x");
    ConstSpan iov[] = {ConstSpan{}, ConstSpan{a.data(), a.size()},
                       ConstSpan{}};
    EXPECT_TRUE(bio.writev(iov, 3));
    EXPECT_EQ(bio.available(), 1u);
}

TEST(MemBio, WritevPastCapRefusesWholeVector)
{
    // The writev contract is accept-or-refuse for the whole vector:
    // a capped bio must never take a prefix of the slices (a record
    // torn across a refusal would corrupt the stream on retry).
    MemBio bio;
    bio.setMaxBuffered(10);
    Bytes a(6, 0xaa), b(6, 0xbb);
    ConstSpan iov[] = {ConstSpan{a.data(), a.size()},
                       ConstSpan{b.data(), b.size()}};
    EXPECT_FALSE(bio.writev(iov, 2));
    EXPECT_EQ(bio.available(), 0u);
    EXPECT_EQ(bio.blockedWrites(), 1u);
    // A vector that fits exactly is accepted whole.
    Bytes c(4, 0xcc);
    ConstSpan fits[] = {ConstSpan{a.data(), a.size()},
                        ConstSpan{c.data(), c.size()}};
    EXPECT_TRUE(bio.writev(fits, 2));
    EXPECT_EQ(bio.available(), 10u);
}

TEST(BioEndpoint, WritevCrossesPairAndKeepsWriteProbe)
{
    perf::PerfContext ctx;
    BioPair pair;
    Bytes a = toBytes("via "), b = toBytes("writev");
    ConstSpan iov[] = {ConstSpan{a.data(), a.size()},
                       ConstSpan{b.data(), b.size()}};
    {
        perf::ContextScope scope(&ctx);
        EXPECT_TRUE(pair.clientEnd().writev(iov, 2));
    }
    uint8_t buf[16];
    size_t n = pair.serverEnd().read(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, buf + n), "via writev");
    // Gather writes account under the same probe as scalar writes so
    // the Table 2 buffer-control rows stay comparable.
    ASSERT_TRUE(ctx.counters().count("BIO_write"));
    EXPECT_EQ(ctx.counters().at("BIO_write").calls, 1u);
}

TEST(BioPair, EndpointsAreCrossed)
{
    BioPair pair;
    BioEndpoint client = pair.clientEnd();
    BioEndpoint server = pair.serverEnd();

    client.write(toBytes("to server"));
    uint8_t buf[16];
    size_t n = server.read(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, buf + n), "to server");

    server.write(toBytes("to client"));
    n = client.read(buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, buf + n), "to client");
}

TEST(BioPair, TrafficAccounting)
{
    BioPair pair;
    pair.clientEnd().write(Bytes(10));
    pair.serverEnd().write(Bytes(25));
    EXPECT_EQ(pair.clientBytesSent(), 10u);
    EXPECT_EQ(pair.serverBytesSent(), 25u);
}

TEST(BioEndpoint, FlushIsProbed)
{
    perf::PerfContext ctx;
    BioPair pair;
    {
        perf::ContextScope scope(&ctx);
        BioEndpoint e = pair.clientEnd();
        e.flush();
        e.flush();
    }
    ASSERT_TRUE(ctx.counters().count("BIO_flush"));
    EXPECT_EQ(ctx.counters().at("BIO_flush").calls, 2u);
}

} // anonymous namespace

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace ssla
{

namespace
{

bool quietMode = false;

std::mutex sinkMutex;
std::shared_ptr<LogSink> customSink;

void
emit(LogLevel level, const std::string &msg)
{
    // Hold a reference, not the lock, while calling out: a sink may
    // itself log (the registry warns through here) without deadlock.
    std::shared_ptr<LogSink> sink;
    {
        std::lock_guard<std::mutex> lock(sinkMutex);
        sink = customSink;
    }
    if (sink) {
        (*sink)(level, msg);
        return;
    }
    if (!quietMode)
        std::fprintf(stderr, "%s: %s\n",
                     level == LogLevel::Warn ? "warn" : "info",
                     msg.c_str());
}

} // anonymous namespace

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Inform, msg);
}

void
setQuiet(bool quiet)
{
    quietMode = quiet;
}

LogSink
setLogSink(LogSink sink)
{
    auto next = sink ? std::make_shared<LogSink>(std::move(sink))
                     : std::shared_ptr<LogSink>();
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::shared_ptr<LogSink> prev = customSink;
    customSink = std::move(next);
    return prev ? *prev : LogSink();
}

} // namespace ssla

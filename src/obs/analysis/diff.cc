#include "obs/analysis/diff.hh"

#include <cmath>

namespace ssla::obs::analysis
{

namespace
{

struct DiffWalk
{
    double maxDeltaPct;
    Report::Section *sec;
    DiffResult result;

    void
    note(const std::string &line)
    {
        sec->lines.push_back(line);
    }

    void
    walk(const std::string &path, const Json &oldV, const Json &newV)
    {
        // Type change is handled as a gate/fatal only for bools; for
        // anything else it reads as an informational mismatch.
        if (oldV.isBool()) {
            if (!newV.isBool()) {
                ++result.informational;
                note(strf("  CHANGED %s: bool -> non-bool",
                          path.c_str()));
                return;
            }
            if (oldV.b && !newV.b) {
                ++result.gateRegressions;
                note(strf("  GATE REGRESSION %s: true -> false",
                          path.c_str()));
            } else if (!oldV.b && newV.b) {
                ++result.informational;
                note(strf("  improved %s: false -> true",
                          path.c_str()));
            }
            return;
        }
        if (oldV.isNumber()) {
            if (!newV.isNumber()) {
                ++result.informational;
                note(strf("  CHANGED %s: number -> non-number",
                          path.c_str()));
                return;
            }
            const double a = oldV.number();
            const double b = newV.number();
            if (a == b)
                return;
            const double delta =
                a != 0.0 ? 100.0 * (b - a) / std::fabs(a)
                         : (b > 0 ? 1e9 : -1e9);
            if (std::fabs(delta) > maxDeltaPct) {
                ++result.numericDeltas;
                note(strf("  DELTA %s: %g -> %g (%+.1f%%)",
                          path.c_str(), a, b, delta));
            }
            return;
        }
        if (oldV.isString()) {
            if (!newV.isString() || oldV.str != newV.str) {
                ++result.informational;
                note(strf("  changed %s: \"%s\" -> \"%s\"",
                          path.c_str(), oldV.str.c_str(),
                          newV.isString() ? newV.str.c_str()
                                          : "<non-string>"));
            }
            return;
        }
        if (oldV.isArray()) {
            if (!newV.isArray()) {
                ++result.informational;
                note(strf("  CHANGED %s: array -> non-array",
                          path.c_str()));
                return;
            }
            if (oldV.arr.size() != newV.arr.size()) {
                ++result.informational;
                note(strf("  length %s: %zu -> %zu (comparing common "
                          "prefix)",
                          path.c_str(), oldV.arr.size(),
                          newV.arr.size()));
            }
            const size_t n =
                std::min(oldV.arr.size(), newV.arr.size());
            for (size_t k = 0; k < n; ++k)
                walk(strf("%s[%zu]", path.c_str(), k), oldV.arr[k],
                     newV.arr[k]);
            return;
        }
        if (oldV.isObject()) {
            if (!newV.isObject()) {
                ++result.informational;
                note(strf("  CHANGED %s: object -> non-object",
                          path.c_str()));
                return;
            }
            for (const auto &[key, val] : oldV.obj) {
                const std::string sub =
                    path.empty() ? key : path + "." + key;
                const Json *other = newV.find(key);
                if (!other) {
                    ++result.missingPaths;
                    note(strf("  MISSING %s: present in old run, "
                              "absent in new",
                              sub.c_str()));
                    continue;
                }
                walk(sub, val, *other);
            }
            for (const auto &[key, val] : newV.obj) {
                (void)val;
                if (!oldV.find(key)) {
                    ++result.informational;
                    note(strf("  new field %s.%s",
                              path.empty() ? "(root)" : path.c_str(),
                              key.c_str()));
                }
            }
            return;
        }
        // Null old value: nothing to compare.
    }
};

} // anonymous namespace

DiffResult
diffBench(const Json &oldDoc, const Json &newDoc, double maxDeltaPct,
          Report &report)
{
    auto &sec = report.section("bench_diff");
    sec.lines.push_back(
        strf("numeric threshold: %.1f%%", maxDeltaPct));
    DiffWalk walk{maxDeltaPct, &sec, {}};
    walk.walk("", oldDoc, newDoc);
    sec.lines.push_back(strf(
        "gate_regressions=%d missing_paths=%d numeric_deltas=%d "
        "informational=%d => %s",
        walk.result.gateRegressions, walk.result.missingPaths,
        walk.result.numericDeltas, walk.result.informational,
        walk.result.failed() ? "FAIL" : "OK"));
    return walk.result;
}

} // namespace ssla::obs::analysis

/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal invariant violations (library bugs); fatal()
 * is for unrecoverable user/configuration errors. Both terminate.
 */

#ifndef SSLA_UTIL_LOGGING_HH
#define SSLA_UTIL_LOGGING_HH

#include <string>

namespace ssla
{

/** Abort with a message; something that should never happen happened. */
[[noreturn]] void panic(const std::string &msg);

/** Exit with an error message; the caller misused the library. */
[[noreturn]] void fatal(const std::string &msg);

/** Emit a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Emit an informational message to stderr. */
void inform(const std::string &msg);

/** Globally silence warn()/inform() (benchmarks want clean stdout). */
void setQuiet(bool quiet);

} // namespace ssla

#endif // SSLA_UTIL_LOGGING_HH

/**
 * @file
 * Secure file/stream transfer over an SSL session: pipes stdin (or a
 * built-in sample) through an encrypted in-process channel, verifying
 * integrity end to end, and reports per-suite transfer costs.
 *
 *   ./secure_channel [suite]
 *   suites: null-md5 rc4-md5 rc4-sha des 3des aes128 aes256
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/cycles.hh"
#include "util/rng.hh"

using namespace ssla;
using namespace ssla::ssl;

namespace
{

CipherSuiteId
suiteByName(const std::string &name)
{
    if (name == "null-md5")
        return CipherSuiteId::RSA_NULL_MD5;
    if (name == "rc4-md5")
        return CipherSuiteId::RSA_RC4_128_MD5;
    if (name == "rc4-sha")
        return CipherSuiteId::RSA_RC4_128_SHA;
    if (name == "des")
        return CipherSuiteId::RSA_DES_CBC_SHA;
    if (name == "3des")
        return CipherSuiteId::RSA_3DES_EDE_CBC_SHA;
    if (name == "aes128")
        return CipherSuiteId::RSA_AES_128_CBC_SHA;
    if (name == "aes256")
        return CipherSuiteId::RSA_AES_256_CBC_SHA;
    throw std::invalid_argument("unknown suite: " + name);
}

struct TransferResult
{
    double handshakeMs;
    double transferMs;
    double mbps;
    uint64_t wireBytes;
};

TransferResult
transfer(CipherSuiteId suite, const crypto::RsaKeyPair &key,
         const pki::Certificate &cert, const Bytes &blob)
{
    BioPair wires;
    ServerConfig scfg;
    scfg.certificate = cert;
    scfg.privateKey = key.priv;
    scfg.suites = {suite};
    SslServer server(scfg, wires.serverEnd());
    ClientConfig ccfg;
    ccfg.suites = {suite};
    SslClient client(ccfg, wires.clientEnd());

    uint64_t t0 = rdcycles();
    runLockstep(client, server);
    uint64_t t1 = rdcycles();

    // Stream the blob in 16KB chunks, reading as we go.
    Bytes received;
    received.reserve(blob.size());
    constexpr size_t chunk = 16384;
    for (size_t off = 0; off < blob.size(); off += chunk) {
        size_t n = std::min(chunk, blob.size() - off);
        client.writeApplicationData(
            Bytes(blob.begin() + off, blob.begin() + off + n));
        while (auto data = server.readApplicationData())
            received.insert(received.end(), data->begin(), data->end());
    }
    uint64_t t2 = rdcycles();

    if (received != blob)
        throw std::runtime_error("integrity failure!");

    TransferResult r;
    r.handshakeMs = cyclesToSeconds(t1 - t0) * 1e3;
    r.transferMs = cyclesToSeconds(t2 - t1) * 1e3;
    r.mbps = blob.size() / 1e6 / cyclesToSeconds(t2 - t1);
    r.wireBytes = wires.clientBytesSent() + wires.serverBytesSent();
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Xoshiro256 seed(99);
    bn::RngFunc rng = [&](uint8_t *out, size_t len) {
        seed.fill(out, len);
    };
    std::printf("generating server identity...\n");
    crypto::RsaKeyPair key = crypto::rsaGenerateKey(1024, rng);
    pki::CertificateInfo info;
    info.serial = 3;
    info.issuer = "Channel CA";
    info.subject = "channel.example";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    Bytes blob = Xoshiro256(4242).bytes(2 * 1024 * 1024);
    std::printf("transferring %zu MB over each suite...\n\n",
                blob.size() >> 20);

    std::vector<CipherSuiteId> suites;
    if (argc > 1) {
        suites.push_back(suiteByName(argv[1]));
    } else {
        suites = allCipherSuites();
    }

    perf::TablePrinter table("Secure channel transfer (2MB blob)");
    table.setHeader({"suite", "handshake ms", "transfer ms", "MB/s",
                     "wire overhead"});
    for (CipherSuiteId id : suites) {
        TransferResult r = transfer(id, key, cert, blob);
        table.addRow(
            {cipherSuite(id).name, perf::fmtF(r.handshakeMs, 2),
             perf::fmtF(r.transferMs, 1), perf::fmtF(r.mbps, 1),
             perf::fmtPct(100.0 * (static_cast<double>(r.wireBytes) -
                                   blob.size()) /
                          blob.size(), 2)});
    }
    table.print();
    std::printf("\nAll transfers integrity-checked byte for byte.\n");
    return 0;
}

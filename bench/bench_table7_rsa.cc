/**
 * @file
 * Reproduces Table 7: RSA decryption broken into its six steps
 * (init, string->bignum, blinding, computation, bignum->string,
 * block parsing) for 512-bit and 1024-bit keys.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/pkcs1.hh"
#include "perf/probe.hh"
#include "perf/report.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

namespace
{

struct StepShare
{
    const char *name;
    const char *probe;
    double paper512, paper1024;
};

const StepShare steps[] = {
    {"Init", "rsa_init", 0.07, 0.02},
    {"data_to_bn", "data_to_bn", 0.07, 0.02},
    {"blinding", "blinding", 1.20, 0.66},
    {"computation", "rsa_computation", 97.01, 98.85},
    {"bn_to_data", "bn_to_data", 0.05, 0.02},
    {"block_parsing", "block_parsing", 1.60, 0.43},
};

perf::PerfContext
profile(size_t bits, int runs)
{
    const auto &kp = bench::benchKey(bits);
    RandomPool pool(Bytes{1, 2, 3});
    Bytes cipher = rsaPublicEncrypt(kp.pub, Bytes(48, 0x42), pool);

    // Warm-up (blinding setup, Montgomery contexts).
    rsaPrivateDecrypt(*kp.priv, cipher);

    perf::PerfContext ctx;
    {
        perf::ContextScope scope(&ctx);
        for (int i = 0; i < runs; ++i)
            rsaPrivateDecrypt(*kp.priv, cipher);
    }
    return ctx;
}

} // anonymous namespace

int
main()
{
    constexpr int runs = 100;
    // The profile is only comparable against the paper on the paper-era
    // core; say which backend ran so an A/B rerun is unambiguous.
    const bn::Engine &engine = bench::benchKey(512).priv->bnEngine();
    std::printf("bn backend: %s (%u-bit limbs)\n", engine.name(),
                engine.limbBits());
    perf::PerfContext ctx512 = profile(512, runs);
    perf::PerfContext ctx1024 = profile(1024, runs);

    auto cycles = [&](perf::PerfContext &ctx, const char *probe) {
        return static_cast<double>(ctx.cyclesFor(probe)) / runs;
    };
    double total512 =
        cycles(ctx512, "rsa_private_decryption");
    double total1024 =
        cycles(ctx1024, "rsa_private_decryption");

    TablePrinter table(
        "Table 7: Execution time breakdown for RSA decryption "
        "(cycles per op, avg of 100)");
    table.setHeader({"Step", "Functionality", "512b cyc", "512b %",
                     "paper %", "1024b cyc", "1024b %", "paper %"});
    int step_no = 1;
    for (const auto &s : steps) {
        double c512 = cycles(ctx512, s.probe);
        double c1024 = cycles(ctx1024, s.probe);
        table.addRow({perf::fmt("%d", step_no++), s.name,
                      perf::fmtCount(static_cast<uint64_t>(c512)),
                      perf::fmtPct(100 * c512 / total512, 2),
                      perf::fmtF(s.paper512, 2),
                      perf::fmtCount(static_cast<uint64_t>(c1024)),
                      perf::fmtPct(100 * c1024 / total1024, 2),
                      perf::fmtF(s.paper1024, 2)});
    }
    table.addRule();
    table.addRow({"", "Total",
                  perf::fmtCount(static_cast<uint64_t>(total512)),
                  "100%", "100",
                  perf::fmtCount(static_cast<uint64_t>(total1024)),
                  "100%", "100"});
    table.print();

    std::printf("\npaper totals: 1,195,290 cycles (512b), "
                "6,041,353 cycles (1024b)\n");
    return 0;
}

/**
 * @file
 * SHA-1 message digest (FIPS 180-2).
 */

#ifndef SSLA_CRYPTO_SHA1_HH
#define SSLA_CRYPTO_SHA1_HH

#include "crypto/digest.hh"
#include "crypto/sha1_kernel.hh"

namespace ssla::crypto
{

/** Incremental SHA-1 (20-byte digest, 64-byte blocks). */
class Sha1 final : public Digest
{
  public:
    static constexpr size_t outputSize = 20;
    static constexpr size_t blockBytes = 64;

    Sha1() { init(); }

    void init() override;
    void update(const uint8_t *data, size_t len) override;
    using Digest::update;
    void final(uint8_t *out) override;
    using Digest::final;

    size_t digestSize() const override { return outputSize; }
    size_t blockSize() const override { return blockBytes; }
    const char *name() const override { return "SHA-1"; }
    std::unique_ptr<Digest> clone() const override;

    /** One-shot convenience. */
    static Bytes hash(const Bytes &data);

  private:
    Sha1State state_;
    uint64_t totalLen_ = 0;
    uint8_t buffer_[blockBytes];
    size_t bufferLen_ = 0;
};

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_SHA1_HH

# Empty compiler generated dependencies file for bench_ablation_hw_aes.
# This may be replaced when dependencies are built.

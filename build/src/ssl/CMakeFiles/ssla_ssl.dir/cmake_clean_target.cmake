file(REMOVE_RECURSE
  "libssla_ssl.a"
)

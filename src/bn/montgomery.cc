#include "bn/montgomery.hh"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "perf/probe.hh"

namespace ssla::bn
{

#ifndef NDEBUG
/**
 * RAII assertion that the ctx's scratch is entered by one thread at a
 * time (see the header's THREAD OWNERSHIP note). Debug builds only;
 * Release pays nothing.
 */
class ScratchGuard
{
  public:
    explicit ScratchGuard(const MontgomeryCtx &ctx) : ctx_(ctx)
    {
        [[maybe_unused]] unsigned prev =
            ctx_.scratchBusy_.fetch_add(1, std::memory_order_acq_rel);
        assert(prev == 0 &&
               "MontgomeryCtx scratch entered concurrently; contexts "
               "are single-owner — clone the key/ctx per thread");
    }
    ~ScratchGuard()
    {
        ctx_.scratchBusy_.fetch_sub(1, std::memory_order_acq_rel);
    }

  private:
    const MontgomeryCtx &ctx_;
};
#define SSLA_SCRATCH_GUARD(ctx) ScratchGuard scratch_guard(ctx)
#else
#define SSLA_SCRATCH_GUARD(ctx) ((void)0)
#endif

namespace
{

/** Inverse of an odd 32-bit value modulo 2^32, by Newton iteration. */
Limb
inverseMod32(Limb x)
{
    // Each iteration doubles the number of correct low bits; five
    // iterations take the initial 3 correct bits past 32.
    Limb y = x; // correct mod 2^3 for odd x
    for (int i = 0; i < 5; ++i)
        y = y * (2 - x * y);
    return y;
}

} // anonymous namespace

MontgomeryCtx::MontgomeryCtx(const BigNum &modulus) : n_(modulus)
{
    if (!n_.isOdd() || n_ <= BigNum(1))
        throw std::domain_error("MontgomeryCtx: modulus must be odd > 1");
    n0_ = static_cast<Limb>(0u - inverseMod32(n_.loWord()));

    size_t nbits = limbCount() * limbBits;
    BigNum r = BigNum(1).shiftLeft(nbits);
    rModN_ = r.mod(n_);
    rr_ = r.sqr().mod(n_);
    t_.resize(2 * limbCount() + 1);
}

MontgomeryCtx::Raw
MontgomeryCtx::toRaw(const BigNum &a) const
{
    if (a.isNegative() || a.cmpAbs(n_) >= 0)
        throw std::domain_error("MontgomeryCtx: value out of range");
    Raw out(limbCount(), 0);
    const auto &limbs = a.limbs();
    std::copy(limbs.begin(), limbs.end(), out.begin());
    return out;
}

BigNum
MontgomeryCtx::fromRaw(const Raw &a) const
{
    return BigNum::fromLimbs(Raw(a));
}

void
MontgomeryCtx::reduceScratch(Raw &out) const
{
    perf::FuncProbe probe("BN_from_montgomery", perf::ProbeLevel::Fine);
    size_t n = limbCount();
    const Limb *mod = n_.limbs().data();
    Limb *t = t_.data();

    for (size_t i = 0; i < n; ++i) {
        Limb m = t[i] * n0_;
        Limb carry = bn_mul_add_words(t + i, mod, n, m);
        // Propagate the word carry through the upper limbs.
        size_t k = i + n;
        while (carry) {
            DLimb s = static_cast<DLimb>(t[k]) + carry;
            t[k] = static_cast<Limb>(s);
            carry = static_cast<Limb>(s >> limbBits);
            ++k;
        }
    }

    // Result is t >> (n words); subtract N once if needed.
    Limb *u = t + n;
    bool ge = u[n] != 0;
    if (!ge) {
        ge = true;
        for (size_t i = n; i-- > 0;) {
            if (u[i] != mod[i]) {
                ge = u[i] > mod[i];
                break;
            }
        }
    }
    out.resize(n);
    if (ge) {
        Limb borrow = bn_sub_words(out.data(), u, mod, n);
        (void)borrow; // u - N < R by construction
    } else {
        std::memcpy(out.data(), u, n * sizeof(Limb));
    }
}

void
MontgomeryCtx::mulRaw(Raw &out, const Raw &a, const Raw &b) const
{
    SSLA_SCRATCH_GUARD(*this);
    size_t n = limbCount();
    std::fill(t_.begin(), t_.end(), 0);
    for (size_t i = 0; i < n; ++i) {
        if (b[i] == 0)
            continue;
        Limb carry =
            bn_mul_add_words(t_.data() + i, a.data(), n, b[i]);
        t_[i + n] += carry; // position i+n has no prior carry-in > word
        if (t_[i + n] < carry) {
            size_t k = i + n + 1;
            while (++t_[k] == 0)
                ++k;
        }
    }
    reduceScratch(out);
}

void
MontgomeryCtx::sqrRaw(Raw &out, const Raw &a) const
{
    perf::FuncProbe probe("BN_sqr", perf::ProbeLevel::Fine);
    mulRaw(out, a, a);
}

BigNum
MontgomeryCtx::mul(const BigNum &a, const BigNum &b) const
{
    Raw ra = toRaw(a);
    Raw rb = toRaw(b);
    Raw out;
    mulRaw(out, ra, rb);
    return fromRaw(out);
}

BigNum
MontgomeryCtx::sqr(const BigNum &a) const
{
    Raw ra = toRaw(a);
    Raw out;
    sqrRaw(out, ra);
    return fromRaw(out);
}

BigNum
MontgomeryCtx::toMont(const BigNum &a) const
{
    return mul(a, rr_);
}

BigNum
MontgomeryCtx::fromMont(const BigNum &a) const
{
    SSLA_SCRATCH_GUARD(*this);
    std::fill(t_.begin(), t_.end(), 0);
    const auto &limbs = a.limbs();
    if (a.isNegative() || limbs.size() > limbCount())
        throw std::domain_error("MontgomeryCtx: value out of range");
    std::copy(limbs.begin(), limbs.end(), t_.begin());
    Raw out;
    reduceScratch(out);
    return fromRaw(out);
}

} // namespace ssla::bn

#include "util/bytes.hh"

#include <stdexcept>

namespace ssla
{

bool
constantTimeEquals(const uint8_t *a, const uint8_t *b, size_t len)
{
    uint8_t diff = 0;
    for (size_t i = 0; i < len; ++i)
        diff |= static_cast<uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

bool
constantTimeEquals(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    return constantTimeEquals(a.data(), b.data(), a.size());
}

void
secureWipe(void *data, size_t len)
{
    volatile uint8_t *p = static_cast<volatile uint8_t *>(data);
    for (size_t i = 0; i < len; ++i)
        p[i] = 0;
}

void
secureWipe(Bytes &data)
{
    if (!data.empty())
        secureWipe(data.data(), data.size());
    data.clear();
}

void
ByteWriter::putVector8(const Bytes &b)
{
    if (b.size() > 0xff)
        throw std::length_error("putVector8: vector too long");
    putU8(static_cast<uint8_t>(b.size()));
    putBytes(b);
}

void
ByteWriter::putVector16(const Bytes &b)
{
    if (b.size() > 0xffff)
        throw std::length_error("putVector16: vector too long");
    putU16(static_cast<uint16_t>(b.size()));
    putBytes(b);
}

void
ByteWriter::putVector24(const Bytes &b)
{
    if (b.size() > 0xffffff)
        throw std::length_error("putVector24: vector too long");
    putU24(static_cast<uint32_t>(b.size()));
    putBytes(b);
}

void
ByteReader::require(size_t n) const
{
    if (remaining() < n)
        throw std::out_of_range("ByteReader: truncated input");
}

uint8_t
ByteReader::getU8()
{
    require(1);
    return data_[pos_++];
}

uint16_t
ByteReader::getU16()
{
    require(2);
    uint16_t v = static_cast<uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::getU24()
{
    require(3);
    uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 16) |
                 (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
                 data_[pos_ + 2];
    pos_ += 3;
    return v;
}

uint32_t
ByteReader::getU32()
{
    uint32_t hi = getU16();
    uint32_t lo = getU16();
    return (hi << 16) | lo;
}

Bytes
ByteReader::getBytes(size_t n)
{
    require(n);
    Bytes out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
}

Bytes
ByteReader::getVector8()
{
    return getBytes(getU8());
}

Bytes
ByteReader::getVector16()
{
    return getBytes(getU16());
}

Bytes
ByteReader::getVector24()
{
    return getBytes(getU24());
}

void
ByteReader::skip(size_t n)
{
    require(n);
    pos_ += n;
}

} // namespace ssla

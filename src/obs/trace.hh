/**
 * @file
 * Per-session handshake tracing: a fixed-capacity ring of timestamped
 * events — state transitions, handshake flights, crypto submit and
 * completion, alerts, faults, deadline fires — cheap enough to leave
 * on for sampled sessions in a production run.
 *
 * Each event carries two clocks: the raw cycle counter (for Chrome
 * trace / Perfetto export and cross-thread alignment) and the engine's
 * virtual tick (multiplexer sweep), which is the deterministic time
 * base of the fault harness — a chaos failure replayed from its seed
 * produces the identical tick sequence.
 *
 * A SessionTrace is single-writer: it belongs to the worker thread
 * that owns the session (the CryptoPool's per-thread traces likewise
 * belong to their pool thread). The pluggable TraceSink receives the
 * completed ring at a session's terminal outcome — the chaos suite's
 * flight recorder: every fatal alert comes with the event history that
 * led to it.
 */

#ifndef SSLA_OBS_TRACE_HH
#define SSLA_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/cycles.hh"

namespace ssla::obs
{

/** What happened. Kinds are shared by endpoints, engine and channel. */
enum class TraceEventKind : uint8_t
{
    ConnOpen,       ///< session slot created (engine)
    StateEnter,     ///< state machine entered a new state
    FlightSend,     ///< handshake message sent (label = message type)
    FlightRecv,     ///< handshake message received
    CcsSend,        ///< ChangeCipherSpec sent
    CcsRecv,        ///< ChangeCipherSpec received
    CryptoSubmit,   ///< async crypto job submitted
    CryptoComplete, ///< async crypto result consumed
    CryptoCancel,   ///< in-flight job cancelled at teardown
    JobStart,       ///< crypto-pool thread began executing a job
    JobEnd,         ///< crypto-pool thread finished a job
    AlertSend,      ///< alert put on the wire (code = description)
    AlertRecv,      ///< alert received
    FaultInjected,  ///< channel fault applied (label = fault type)
    DeadlineFired,  ///< engine deadline expired (label = which)
    Park,           ///< session parked on async crypto
    Resume,         ///< parked session resumed
    HandshakeDone,  ///< both flights complete on this endpoint
    Complete,       ///< session reached its configured workload
    Teardown,       ///< session torn down (label = why)
    LogMessage,     ///< captured warn()/inform() text
    ThreadRestart,  ///< supervisor reaped + respawned a crypto thread
    BreakerTransition, ///< accept-gate breaker changed state (label)
};

/** Static name of an event kind (for exporters). */
const char *traceEventKindName(TraceEventKind kind);

/** Which actor recorded the event. */
constexpr uint8_t traceSideServer = 0;
constexpr uint8_t traceSideClient = 1;
constexpr uint8_t traceSideEngine = 2;
constexpr uint8_t traceSideChannel = 3;

/** Static name of a side. */
const char *traceSideName(uint8_t side);

/** One recorded event. label must have static storage duration. */
struct TraceEvent
{
    uint64_t cycles = 0; ///< rdcycles() at record time
    uint64_t tick = 0;   ///< virtual tick (engine sweep count)
    TraceEventKind kind = TraceEventKind::ConnOpen;
    uint8_t side = traceSideEngine;
    uint16_t code = 0; ///< alert code / state index / direction
    uint64_t arg = 0;  ///< size, record index, job id...
    const char *label = nullptr; ///< static string; may be null
    std::string text;            ///< dynamic payload (log capture)
};

/**
 * Outcome-keyed trace retention policy.
 *
 * Plain 1-in-N sampling decides at session OPEN which sessions are
 * observable — so under low failure rates the interesting tail (fatal
 * alerts, timeouts, shed sessions) is almost never in the sample. This
 * policy splits the decision: with keepFailures set, every session
 * records into a ring (recording is cheap), and the 1-in-N decay is
 * applied at DUMP time to completed sessions only; any session whose
 * terminal outcome is a failure always reaches the sink.
 */
struct TraceSampling
{
    /** 1-in-N retention for completed sessions (0 = tracing off). */
    uint32_t sampleEvery = 0;
    /** Record every session; failures bypass the 1-in-N decay. */
    bool keepFailures = false;

    /** Should this session get a flight-recorder ring at all? */
    bool
    shouldRecord(uint64_t serial) const
    {
        if (sampleEvery == 0)
            return false;
        return keepFailures || serial % sampleEvery == 0;
    }

    /** Terminal outcomes that always dump (the interesting tail). */
    static bool
    isFailure(std::string_view outcome)
    {
        return outcome != "completed" && outcome != "open";
    }

    /** Should a finished session's trace reach the sink? */
    bool
    shouldDump(uint64_t serial, std::string_view outcome) const
    {
        if (isFailure(outcome))
            return true;
        return sampleEvery != 0 && serial % sampleEvery == 0;
    }
};

/**
 * Fixed-capacity event ring for one session (or one crypto-pool
 * thread's track). Overflow drops the OLDEST events — the flight
 * recorder keeps the end of the story, which is the part that explains
 * the crash.
 */
class SessionTrace
{
  public:
    /**
     * @param serial stable session identifier (engine: worker<<32|n)
     * @param track export track (worker index; crypto threads offset)
     * @param capacity ring size in events
     */
    explicit SessionTrace(uint64_t serial, uint32_t track,
                          size_t capacity = 192);

    void record(TraceEventKind kind, uint8_t side, const char *label,
                uint16_t code = 0, uint64_t arg = 0);

    /** Record with a dynamic text payload (captured log lines). */
    void recordText(TraceEventKind kind, uint8_t side, std::string text);

    /** Advance the virtual clock stamped on subsequent events. */
    void setTick(uint64_t tick) { tick_ = tick; }
    uint64_t tick() const { return tick_; }

    uint64_t serial() const { return serial_; }
    uint32_t track() const { return track_; }

    /** Terminal outcome annotation ("completed", "alerted", ...). */
    void noteOutcome(const char *outcome) { outcome_ = outcome; }
    const char *outcome() const { return outcome_; }

    /** Events currently held, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Events recorded over the trace's lifetime. */
    uint64_t recorded() const { return recorded_; }

    /** Events lost to ring overflow. */
    uint64_t
    dropped() const
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
    }

    size_t
    size() const
    {
        return recorded_ < ring_.size()
                   ? static_cast<size_t>(recorded_)
                   : ring_.size();
    }

  private:
    TraceEvent &nextSlot();

    std::vector<TraceEvent> ring_;
    uint64_t serial_;
    uint32_t track_;
    uint64_t recorded_ = 0;
    uint64_t tick_ = 0;
    const char *outcome_ = "open";
};

/**
 * Receives completed session traces. Implementations must be
 * thread-safe: workers dump concurrently.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void dump(const SessionTrace &trace) = 0;
};

} // namespace ssla::obs

#endif // SSLA_OBS_TRACE_HH

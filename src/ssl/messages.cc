#include "ssl/messages.hh"

namespace ssla::ssl
{

namespace
{

/** Convert reader exhaustion into decode alerts. */
template <class Fn>
auto
decodeGuard(const char *what, Fn &&fn)
{
    try {
        return fn();
    } catch (const std::out_of_range &) {
        throw SslError(AlertDescription::IllegalParameter,
                       std::string("malformed ") + what);
    }
}

} // anonymous namespace

Bytes
HandshakeMessage::encode() const
{
    ByteWriter w;
    w.putU8(static_cast<uint8_t>(type));
    w.putU24(static_cast<uint32_t>(body.size()));
    w.putBytes(body);
    return w.take();
}

std::optional<HandshakeMessage>
HandshakeMessage::parse(const Bytes &data, size_t &offset)
{
    if (data.size() - offset < 4)
        return std::nullopt;
    uint8_t type = data[offset];
    size_t len = (static_cast<size_t>(data[offset + 1]) << 16) |
                 (static_cast<size_t>(data[offset + 2]) << 8) |
                 data[offset + 3];
    if (data.size() - offset < 4 + len)
        return std::nullopt;
    HandshakeMessage msg;
    msg.type = static_cast<HandshakeType>(type);
    msg.body.assign(data.begin() + offset + 4,
                    data.begin() + offset + 4 + len);
    offset += 4 + len;
    return msg;
}

Bytes
ClientHelloMsg::encode() const
{
    ByteWriter w;
    w.putU16(version);
    w.putBytes(random);
    w.putVector8(sessionId);
    w.putU16(static_cast<uint16_t>(cipherSuites.size() * 2));
    for (uint16_t s : cipherSuites)
        w.putU16(s);
    Bytes comp(compressionMethods.begin(), compressionMethods.end());
    w.putVector8(comp);
    return w.take();
}

ClientHelloMsg
ClientHelloMsg::parse(const Bytes &body)
{
    return decodeGuard("ClientHello", [&] {
        ClientHelloMsg msg;
        ByteReader r(body);
        msg.version = r.getU16();
        msg.random = r.getBytes(32);
        msg.sessionId = r.getVector8();
        if (msg.sessionId.size() > 32)
            throw SslError(AlertDescription::IllegalParameter,
                           "ClientHello: session id too long");
        uint16_t suites_len = r.getU16();
        if (suites_len % 2)
            throw SslError(AlertDescription::IllegalParameter,
                           "ClientHello: odd cipher suite length");
        msg.cipherSuites.clear();
        for (unsigned i = 0; i < suites_len / 2; ++i)
            msg.cipherSuites.push_back(r.getU16());
        Bytes comp = r.getVector8();
        msg.compressionMethods.assign(comp.begin(), comp.end());
        return msg;
    });
}

Bytes
ServerHelloMsg::encode() const
{
    ByteWriter w;
    w.putU16(version);
    w.putBytes(random);
    w.putVector8(sessionId);
    w.putU16(cipherSuite);
    w.putU8(compressionMethod);
    return w.take();
}

ServerHelloMsg
ServerHelloMsg::parse(const Bytes &body)
{
    return decodeGuard("ServerHello", [&] {
        ServerHelloMsg msg;
        ByteReader r(body);
        msg.version = r.getU16();
        msg.random = r.getBytes(32);
        msg.sessionId = r.getVector8();
        msg.cipherSuite = r.getU16();
        msg.compressionMethod = r.getU8();
        return msg;
    });
}

Bytes
CertificateMsg::encode() const
{
    ByteWriter inner;
    for (const auto &cert : chain)
        inner.putVector24(cert);
    ByteWriter w;
    w.putVector24(inner.take());
    return w.take();
}

CertificateMsg
CertificateMsg::parse(const Bytes &body)
{
    return decodeGuard("Certificate", [&] {
        CertificateMsg msg;
        ByteReader r(body);
        Bytes list = r.getVector24();
        ByteReader lr(list);
        while (!lr.empty())
            msg.chain.push_back(lr.getVector24());
        return msg;
    });
}

Bytes
ClientKeyExchangeMsg::encode() const
{
    return encryptedPreMaster;
}

ClientKeyExchangeMsg
ClientKeyExchangeMsg::parse(const Bytes &body)
{
    ClientKeyExchangeMsg msg;
    msg.encryptedPreMaster = body;
    return msg;
}

Bytes
ClientKeyExchangeMsg::encodeDhe(const Bytes &public_value)
{
    ByteWriter w;
    w.putVector16(public_value);
    return w.take();
}

Bytes
ClientKeyExchangeMsg::parseDhe(const Bytes &body)
{
    return decodeGuard("ClientKeyExchange(DHE)", [&] {
        ByteReader r(body);
        Bytes value = r.getVector16();
        if (!r.empty())
            throw SslError(AlertDescription::IllegalParameter,
                           "ClientKeyExchange: trailing bytes");
        return value;
    });
}

Bytes
ServerKeyExchangeMsg::signedParams() const
{
    ByteWriter w;
    w.putVector16(p);
    w.putVector16(g);
    w.putVector16(publicValue);
    return w.take();
}

Bytes
ServerKeyExchangeMsg::encode() const
{
    ByteWriter w;
    w.putVector16(p);
    w.putVector16(g);
    w.putVector16(publicValue);
    w.putVector16(signature);
    return w.take();
}

ServerKeyExchangeMsg
ServerKeyExchangeMsg::parse(const Bytes &body)
{
    return decodeGuard("ServerKeyExchange", [&] {
        ServerKeyExchangeMsg msg;
        ByteReader r(body);
        msg.p = r.getVector16();
        msg.g = r.getVector16();
        msg.publicValue = r.getVector16();
        msg.signature = r.getVector16();
        return msg;
    });
}

Bytes
CertificateRequestMsg::encode() const
{
    ByteWriter w;
    Bytes types(certificateTypes.begin(), certificateTypes.end());
    w.putVector8(types);
    w.putU16(0); // empty certificate_authorities list
    return w.take();
}

CertificateRequestMsg
CertificateRequestMsg::parse(const Bytes &body)
{
    return decodeGuard("CertificateRequest", [&] {
        CertificateRequestMsg msg;
        ByteReader r(body);
        Bytes types = r.getVector8();
        msg.certificateTypes.assign(types.begin(), types.end());
        r.getVector16(); // ignore the CA names
        return msg;
    });
}

Bytes
CertificateVerifyMsg::encode() const
{
    ByteWriter w;
    w.putVector16(signature);
    return w.take();
}

CertificateVerifyMsg
CertificateVerifyMsg::parse(const Bytes &body)
{
    return decodeGuard("CertificateVerify", [&] {
        CertificateVerifyMsg msg;
        ByteReader r(body);
        msg.signature = r.getVector16();
        return msg;
    });
}

Bytes
FinishedMsg::encode() const
{
    return verifyData;
}

FinishedMsg
FinishedMsg::parse(const Bytes &body)
{
    // 36 bytes for SSLv3 (MD5||SHA1), 12 for TLS 1.0 (PRF output).
    if (body.size() != 36 && body.size() != 12)
        throw SslError(AlertDescription::IllegalParameter,
                       "Finished: bad verify-data length");
    FinishedMsg msg;
    msg.verifyData = body;
    return msg;
}

const char *
handshakeTypeName(HandshakeType type)
{
    switch (type) {
    case HandshakeType::HelloRequest: return "HelloRequest";
    case HandshakeType::ClientHello: return "ClientHello";
    case HandshakeType::ServerHello: return "ServerHello";
    case HandshakeType::Certificate: return "Certificate";
    case HandshakeType::ServerKeyExchange: return "ServerKeyExchange";
    case HandshakeType::CertificateRequest: return "CertificateRequest";
    case HandshakeType::ServerHelloDone: return "ServerHelloDone";
    case HandshakeType::CertificateVerify: return "CertificateVerify";
    case HandshakeType::ClientKeyExchange: return "ClientKeyExchange";
    case HandshakeType::Finished: return "Finished";
    }
    return "Unknown";
}

} // namespace ssla::ssl

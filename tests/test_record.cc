/**
 * @file
 * Record-layer tests: framing, encryption, MAC verification, padding,
 * fragmentation and sequence numbers.
 */

#include <gtest/gtest.h>

#include "ssl/record.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

struct RecordHarness
{
    BioPair wires;
    RecordLayer client{wires.clientEnd()};
    RecordLayer server{wires.serverEnd()};

    /** Install matching ciphers on client-send / server-recv. */
    void
    arm(CipherSuiteId id, uint64_t seed = 1)
    {
        const CipherSuite &suite = cipherSuite(id);
        Xoshiro256 rng(seed);
        Bytes mac = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        client.enableSendCipher(suite, mac, key, iv);
        server.enableRecvCipher(suite, mac, key, iv);
    }
};

TEST(Record, PlaintextRoundTrip)
{
    RecordHarness h;
    Bytes payload = toBytes("hello record layer");
    h.client.send(ContentType::Handshake, payload);
    auto rec = h.server.receive();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->type, ContentType::Handshake);
    EXPECT_EQ(rec->payload, payload);
}

TEST(Record, ReceiveReturnsNulloptOnEmptyTransport)
{
    RecordHarness h;
    EXPECT_FALSE(h.server.receive());
}

TEST(Record, ReceiveWaitsForCompleteRecord)
{
    RecordHarness h;
    // Hand-write a partial record: header claims 10 bytes, send 3.
    Bytes partial = {22, 0x03, 0x00, 0x00, 0x0a, 1, 2, 3};
    BioPair &w = h.wires;
    w.clientEnd().write(partial);
    EXPECT_FALSE(h.server.receive());
    // Complete it.
    Bytes rest = {4, 5, 6, 7, 8, 9, 10};
    w.clientEnd().write(rest);
    auto rec = h.server.receive();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->payload.size(), 10u);
}

TEST(Record, RejectsBadVersion)
{
    RecordHarness h;
    Bytes bogus = {22, 0x04, 0x00, 0x00, 0x01, 0x00};
    h.wires.clientEnd().write(bogus);
    EXPECT_THROW(h.server.receive(), SslError);
}

TEST(Record, RejectsOversizedFragment)
{
    RecordHarness h;
    Bytes bogus = {22, 0x03, 0x00, 0xff, 0xff};
    h.wires.clientEnd().write(bogus);
    EXPECT_THROW(h.server.receive(), SslError);
}

class RecordCipherSweep : public ::testing::TestWithParam<CipherSuiteId>
{};

TEST_P(RecordCipherSweep, EncryptedRoundTrip)
{
    RecordHarness h;
    h.arm(GetParam());
    Xoshiro256 rng(7);
    for (size_t len : {0u, 1u, 7u, 8u, 100u, 1000u}) {
        Bytes payload = rng.bytes(len);
        h.client.send(ContentType::ApplicationData, payload);
        auto rec = h.server.receive();
        ASSERT_TRUE(rec) << "len " << len;
        EXPECT_EQ(rec->payload, payload) << "len " << len;
        EXPECT_EQ(rec->type, ContentType::ApplicationData);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suites, RecordCipherSweep,
    ::testing::Values(CipherSuiteId::RSA_NULL_MD5,
                      CipherSuiteId::RSA_RC4_128_MD5,
                      CipherSuiteId::RSA_RC4_128_SHA,
                      CipherSuiteId::RSA_DES_CBC_SHA,
                      CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                      CipherSuiteId::RSA_AES_128_CBC_SHA,
                      CipherSuiteId::RSA_AES_256_CBC_SHA));

TEST(Record, CiphertextDiffersFromPlaintext)
{
    RecordHarness h;
    h.arm(CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    Bytes payload(64, 0x42);
    h.client.send(ContentType::ApplicationData, payload);
    // Inspect the wire: beyond the 5-byte header nothing should equal
    // the plaintext run.
    Bytes wire(5 + 64 + 20 + 8);
    size_t got = h.wires.serverEnd().peek(wire.data(), wire.size());
    ASSERT_GT(got, 10u);
    EXPECT_NE(Bytes(wire.begin() + 5, wire.begin() + 15),
              Bytes(payload.begin(), payload.begin() + 10));
}

TEST(Record, MacTamperDetected)
{
    RecordHarness h;
    h.arm(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Bytes payload = toBytes("authentic data");
    h.client.send(ContentType::ApplicationData, payload);

    // Corrupt one ciphertext byte in flight.
    BioEndpoint sv = h.wires.serverEnd();
    Bytes buf(4096);
    size_t n = sv.peek(buf.data(), buf.size());
    sv.consume(n);
    buf[5 + 3] ^= 0x01;
    h.wires.clientEnd();
    // Write the corrupted record back into the server's inbox by
    // sending from the client side's raw queue.
    // (BioPair has no raw injection; emulate via a fresh pair.)
    BioPair fresh;
    RecordLayer victim(fresh.serverEnd());
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(1);
    Bytes mac = rng.bytes(suite.macLen());
    Bytes key = rng.bytes(suite.keyLen());
    Bytes iv = rng.bytes(suite.ivLen());
    victim.enableRecvCipher(suite, mac, key, iv);
    fresh.clientEnd().write(buf.data(), n);
    EXPECT_THROW(victim.receive(), SslError);
}

TEST(Record, WrongMacSecretDetected)
{
    BioPair wires;
    RecordLayer sender(wires.clientEnd());
    RecordLayer receiver(wires.serverEnd());
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_RC4_128_SHA);
    Xoshiro256 rng(2);
    Bytes key = rng.bytes(suite.keyLen());
    Bytes mac1 = rng.bytes(suite.macLen());
    Bytes mac2 = rng.bytes(suite.macLen());
    sender.enableSendCipher(suite, mac1, key, Bytes());
    receiver.enableRecvCipher(suite, mac2, key, Bytes());
    sender.send(ContentType::ApplicationData, toBytes("data"));
    EXPECT_THROW(receiver.receive(), SslError);
}

TEST(Record, SequenceNumberPreventsReplayReordering)
{
    // Two records decrypted in order succeed; the MAC binds seq, so
    // the same bytes replayed into a fresh receiver at seq 0 fail for
    // the second record.
    BioPair wires;
    RecordLayer sender(wires.clientEnd());
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_RC4_128_SHA);
    Xoshiro256 rng(3);
    Bytes key = rng.bytes(suite.keyLen());
    Bytes mac = rng.bytes(suite.macLen());
    sender.enableSendCipher(suite, mac, key, Bytes());
    sender.send(ContentType::ApplicationData, toBytes("first"));
    sender.send(ContentType::ApplicationData, toBytes("second"));

    Bytes wire(4096);
    size_t n = wires.serverEnd().peek(wire.data(), wire.size());
    wire.resize(n);

    // Deliver only the SECOND record to a fresh receiver: its MAC was
    // computed with seq=1 but the receiver expects seq=0.
    size_t first_len = 5 + ((wire[3] << 8) | wire[4]);
    BioPair fresh;
    RecordLayer receiver(fresh.serverEnd());
    receiver.enableRecvCipher(suite, mac, key, Bytes());
    fresh.clientEnd().write(wire.data() + first_len, n - first_len);
    EXPECT_THROW(receiver.receive(), SslError);
}

TEST(Record, FragmentsLargePayloads)
{
    RecordHarness h;
    Bytes big(40000, 0x33);
    h.client.send(ContentType::ApplicationData, big);
    Bytes got;
    int records = 0;
    while (auto rec = h.server.receive()) {
        EXPECT_LE(rec->payload.size(), maxFragment);
        append(got, rec->payload);
        ++records;
    }
    EXPECT_EQ(got, big);
    EXPECT_EQ(records, 3);
    EXPECT_EQ(h.client.recordsSent(), 3u);
    EXPECT_EQ(h.client.bytesSent(), big.size());
}

TEST(Record, EmptyPayloadStillProducesRecord)
{
    RecordHarness h;
    h.client.send(ContentType::Handshake, Bytes());
    auto rec = h.server.receive();
    ASSERT_TRUE(rec);
    EXPECT_TRUE(rec->payload.empty());
}

/** Split @p data into three uneven spans for the gather entry. */
size_t
threeSpans(const Bytes &data, ConstSpan *iov)
{
    size_t a = data.size() / 3, b = data.size() / 2;
    iov[0] = ConstSpan{data.data(), a};
    iov[1] = ConstSpan{data.data() + a, b - a};
    iov[2] = ConstSpan{data.data() + b, data.size() - b};
    return 3;
}

TEST(Record, SpanPathFragmentationBoundary)
{
    // The gather entry must fragment the *concatenation* of the spans:
    // 16384 bytes is exactly one record, 16385 is two (the second
    // carrying the single spilled byte) — regardless of where the
    // slice boundaries fall. Checked both encrypted and in plaintext
    // (the plaintext path borrows the caller's slices via writev).
    for (bool armed : {true, false}) {
        for (size_t total : {maxFragment, maxFragment + 1}) {
            RecordHarness h;
            if (armed)
                h.arm(CipherSuiteId::RSA_AES_128_CBC_SHA, total);
            Xoshiro256 rng(total * 7 + armed);
            Bytes payload = rng.bytes(total);
            ConstSpan iov[3];
            h.client.sendMany(ContentType::ApplicationData, iov,
                              threeSpans(payload, iov));
            Bytes got;
            std::vector<size_t> sizes;
            while (auto rec = h.server.receive()) {
                sizes.push_back(rec->payload.size());
                append(got, rec->payload);
            }
            EXPECT_EQ(got, payload) << "total=" << total;
            if (total == maxFragment) {
                ASSERT_EQ(sizes.size(), 1u);
                EXPECT_EQ(sizes[0], maxFragment);
            } else {
                ASSERT_EQ(sizes.size(), 2u);
                EXPECT_EQ(sizes[0], maxFragment);
                EXPECT_EQ(sizes[1], 1u);
            }
        }
    }
}

TEST(Record, SendManyWouldBlockMidVectorQueuesWholeRecords)
{
    // Bulk gather-send against a capped transport: when maxBuffered
    // trips mid-vector, every refused record must spill *whole* into
    // the retry queue (writev is accept-or-refuse), keep wire order,
    // and drain losslessly once the reader frees space.
    MemBio c2s, s2c;
    c2s.setMaxBuffered(20000); // one ~16.4 KB wire record fits, not two
    RecordLayer sender{BioEndpoint(&s2c, &c2s)};
    RecordLayer receiver{BioEndpoint(&c2s, &s2c)};
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(0x5117);
    Bytes mac = rng.bytes(suite.macLen());
    Bytes key = rng.bytes(suite.keyLen());
    Bytes iv = rng.bytes(suite.ivLen());
    sender.enableSendCipher(suite, mac, key, iv);
    receiver.enableRecvCipher(suite, mac, key, iv);

    obs::MetricsRegistry registry;
    RecordCounters counters = RecordCounters::resolve(registry);
    sender.bindCounters(&counters);

    Bytes payload = rng.bytes(40000); // fragments into 3 records
    ConstSpan iov[3];
    sender.sendMany(ContentType::ApplicationData, iov,
                    threeSpans(payload, iov));

    // Record 1 fit under the cap; records 2 and 3 spilled whole.
    EXPECT_TRUE(sender.outputBlocked());
    EXPECT_EQ(sender.pendingOutputRecords(), 2u);
    EXPECT_EQ(registry.snapshot().counter("record.pending_spills"),
              2u);
    EXPECT_GT(c2s.blockedWrites(), 0u);

    Bytes got;
    for (int sweep = 0; sweep < 100 && got.size() < payload.size();
         ++sweep) {
        while (auto rec = receiver.receive())
            append(got, rec->payload);
        sender.flushPendingOutput();
    }
    EXPECT_EQ(got, payload);
    EXPECT_FALSE(sender.outputBlocked());
    // Sends while blocked must queue behind the backlog, never jump
    // the sequence-number order.
    Bytes tail = rng.bytes(100);
    sender.send(ContentType::ApplicationData, tail);
    auto rec = receiver.receive();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->payload, tail);
}

/**
 * Hand-build an encrypted AES-CBC record whose decrypted fragment is
 * exactly @p plaintext, and feed it to a fresh receiver armed with the
 * matching keys. Returns the error the receiver raised.
 */
SslError
deliverCrafted(const Bytes &plaintext, uint16_t version)
{
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(0xbad);
    Bytes mac_secret = rng.bytes(suite.macLen());
    Bytes key = rng.bytes(suite.keyLen());
    Bytes iv = rng.bytes(suite.ivLen());

    Bytes fragment = plaintext;
    crypto::scalarProvider()
        .createCipher(suite.cipher, key, iv, true)
        ->process(fragment.data(), fragment.data(), fragment.size());

    BioPair wires;
    RecordLayer receiver(wires.serverEnd());
    if (version != ssl3Version)
        receiver.setVersion(version);
    receiver.enableRecvCipher(suite, mac_secret, key, iv);

    Bytes wire = {23, static_cast<uint8_t>(version >> 8),
                  static_cast<uint8_t>(version),
                  static_cast<uint8_t>(fragment.size() >> 8),
                  static_cast<uint8_t>(fragment.size())};
    append(wire, fragment);
    wires.clientEnd().write(wire);

    try {
        receiver.receive();
    } catch (const SslError &e) {
        return e;
    }
    throw std::logic_error("crafted record was accepted");
}

TEST(Record, BadPaddingAndBadMacAreIndistinguishable)
{
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(0xbad);
    Bytes mac_secret = rng.bytes(suite.macLen());
    (void)rng.bytes(suite.keyLen());
    (void)rng.bytes(suite.ivLen());

    // Case 1 — padding invalid, MAC valid: 11 data bytes, the correct
    // MAC over them, and a pad-length byte (255) that cannot fit in
    // the fragment. The receiver's fallback treats the pad as empty,
    // under which the MAC region happens to verify — so any
    // distinguishable error here could only come from the pad check.
    Bytes data(11, 0x61);
    Bytes bad_pad = data;
    append(bad_pad, ssl3Mac(suite.mac, mac_secret, 0, 23, data.data(),
                            data.size()));
    bad_pad.push_back(255);
    ASSERT_EQ(bad_pad.size() % suite.blockLen(), 0u);

    // Case 2 — padding valid, MAC invalid: same layout with correct
    // (empty) padding but a corrupted MAC.
    Bytes bad_mac = data;
    Bytes mac = ssl3Mac(suite.mac, mac_secret, 0, 23, data.data(),
                        data.size());
    mac[0] ^= 0x80;
    append(bad_mac, mac);
    bad_mac.push_back(0);
    ASSERT_EQ(bad_mac.size() % suite.blockLen(), 0u);

    SslError pad_err = deliverCrafted(bad_pad, ssl3Version);
    SslError mac_err = deliverCrafted(bad_mac, ssl3Version);

    // Identical alert and identical message: no padding oracle.
    EXPECT_EQ(pad_err.alert(), AlertDescription::BadRecordMac);
    EXPECT_EQ(mac_err.alert(), AlertDescription::BadRecordMac);
    EXPECT_STREQ(pad_err.what(), mac_err.what());
}

TEST(Record, TlsPaddingBytesValidatedWithoutOracle)
{
    // TLS 1.0 requires every padding byte to equal the pad length; a
    // wrong filler byte must fail exactly like a wrong MAC.
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(0xbad);
    Bytes mac_secret = rng.bytes(suite.macLen());

    Bytes data(8, 0x62); // 8 + 20 MAC + 3 pad + 1 len = 32
    auto craft = [&](bool corrupt_filler, bool corrupt_mac) {
        Bytes frag = data;
        Bytes mac =
            tls1Mac(suite.mac, mac_secret, 0, 23, tls1Version,
                    data.data(), data.size());
        if (corrupt_mac)
            mac[3] ^= 0x01;
        append(frag, mac);
        frag.insert(frag.end(), 3, corrupt_filler ? 7 : 3);
        frag.push_back(3);
        return frag;
    };

    SslError pad_err = deliverCrafted(craft(true, false), tls1Version);
    SslError mac_err = deliverCrafted(craft(false, true), tls1Version);
    EXPECT_EQ(pad_err.alert(), AlertDescription::BadRecordMac);
    EXPECT_EQ(mac_err.alert(), AlertDescription::BadRecordMac);
    EXPECT_STREQ(pad_err.what(), mac_err.what());

    // Sanity: the same construction with valid pad and MAC decodes.
    const Bytes good = craft(false, false);
    EXPECT_THROW(deliverCrafted(good, tls1Version), std::logic_error);
}

TEST(Ssl3Mac, DependsOnAllInputs)
{
    Bytes secret(20, 1);
    Bytes data = toBytes("payload");
    Bytes base = ssl3Mac(crypto::DigestAlg::SHA1, secret, 0, 23,
                         data.data(), data.size());
    EXPECT_EQ(base.size(), 20u);

    EXPECT_NE(ssl3Mac(crypto::DigestAlg::SHA1, secret, 1, 23,
                      data.data(), data.size()),
              base);
    EXPECT_NE(ssl3Mac(crypto::DigestAlg::SHA1, secret, 0, 22,
                      data.data(), data.size()),
              base);
    Bytes secret2(20, 2);
    EXPECT_NE(ssl3Mac(crypto::DigestAlg::SHA1, secret2, 0, 23,
                      data.data(), data.size()),
              base);
    EXPECT_EQ(ssl3Mac(crypto::DigestAlg::MD5, secret, 0, 23,
                      data.data(), data.size())
                  .size(),
              16u);
}

} // anonymous namespace

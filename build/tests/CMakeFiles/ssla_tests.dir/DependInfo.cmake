
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aes.cc" "tests/CMakeFiles/ssla_tests.dir/test_aes.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_aes.cc.o.d"
  "/root/repo/tests/test_bignum.cc" "tests/CMakeFiles/ssla_tests.dir/test_bignum.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_bignum.cc.o.d"
  "/root/repo/tests/test_bio.cc" "tests/CMakeFiles/ssla_tests.dir/test_bio.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_bio.cc.o.d"
  "/root/repo/tests/test_cert.cc" "tests/CMakeFiles/ssla_tests.dir/test_cert.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_cert.cc.o.d"
  "/root/repo/tests/test_chain.cc" "tests/CMakeFiles/ssla_tests.dir/test_chain.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_chain.cc.o.d"
  "/root/repo/tests/test_cipher.cc" "tests/CMakeFiles/ssla_tests.dir/test_cipher.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_cipher.cc.o.d"
  "/root/repo/tests/test_client_auth.cc" "tests/CMakeFiles/ssla_tests.dir/test_client_auth.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_client_auth.cc.o.d"
  "/root/repo/tests/test_der.cc" "tests/CMakeFiles/ssla_tests.dir/test_der.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_der.cc.o.d"
  "/root/repo/tests/test_des.cc" "tests/CMakeFiles/ssla_tests.dir/test_des.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_des.cc.o.d"
  "/root/repo/tests/test_dh.cc" "tests/CMakeFiles/ssla_tests.dir/test_dh.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_dh.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/ssla_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_handshake.cc" "tests/CMakeFiles/ssla_tests.dir/test_handshake.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_handshake.cc.o.d"
  "/root/repo/tests/test_hmac.cc" "tests/CMakeFiles/ssla_tests.dir/test_hmac.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_hmac.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ssla_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_kdf.cc" "tests/CMakeFiles/ssla_tests.dir/test_kdf.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_kdf.cc.o.d"
  "/root/repo/tests/test_md5.cc" "tests/CMakeFiles/ssla_tests.dir/test_md5.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_md5.cc.o.d"
  "/root/repo/tests/test_messages.cc" "tests/CMakeFiles/ssla_tests.dir/test_messages.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_messages.cc.o.d"
  "/root/repo/tests/test_modexp.cc" "tests/CMakeFiles/ssla_tests.dir/test_modexp.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_modexp.cc.o.d"
  "/root/repo/tests/test_perf.cc" "tests/CMakeFiles/ssla_tests.dir/test_perf.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_perf.cc.o.d"
  "/root/repo/tests/test_pkcs1.cc" "tests/CMakeFiles/ssla_tests.dir/test_pkcs1.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_pkcs1.cc.o.d"
  "/root/repo/tests/test_prime.cc" "tests/CMakeFiles/ssla_tests.dir/test_prime.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_prime.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/ssla_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rand.cc" "tests/CMakeFiles/ssla_tests.dir/test_rand.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_rand.cc.o.d"
  "/root/repo/tests/test_rc4.cc" "tests/CMakeFiles/ssla_tests.dir/test_rc4.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_rc4.cc.o.d"
  "/root/repo/tests/test_record.cc" "tests/CMakeFiles/ssla_tests.dir/test_record.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_record.cc.o.d"
  "/root/repo/tests/test_rsa.cc" "tests/CMakeFiles/ssla_tests.dir/test_rsa.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_rsa.cc.o.d"
  "/root/repo/tests/test_session.cc" "tests/CMakeFiles/ssla_tests.dir/test_session.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_session.cc.o.d"
  "/root/repo/tests/test_sha1.cc" "tests/CMakeFiles/ssla_tests.dir/test_sha1.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_sha1.cc.o.d"
  "/root/repo/tests/test_tls.cc" "tests/CMakeFiles/ssla_tests.dir/test_tls.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_tls.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/ssla_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/test_webserver.cc" "tests/CMakeFiles/ssla_tests.dir/test_webserver.cc.o" "gcc" "tests/CMakeFiles/ssla_tests.dir/test_webserver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/ssla_web.dir/DependInfo.cmake"
  "/root/repo/build/src/ssl/CMakeFiles/ssla_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/ssla_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ssla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/ssla_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ssla_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "crypto/rc4.hh"

#include <stdexcept>

namespace ssla::crypto
{

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

Rc4::Rc4(const Bytes &key)
{
    if (key.empty() || key.size() > 256)
        throw std::invalid_argument("RC4: key must be 1..256 bytes");
    keySetupT(key, state_, nullMeter);
}

void
Rc4::process(const uint8_t *in, uint8_t *out, size_t len)
{
    processT(in, out, len, nullMeter);
}

} // namespace ssla::crypto

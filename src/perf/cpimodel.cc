#include "perf/cpimodel.hh"

#include <algorithm>

namespace ssla::perf
{

namespace
{

/** Does this op class touch memory in the modelled compilation? */
bool
isMemoryOp(OpClass c)
{
    // movl/movb are the explicit loads/stores; push/pop hit the stack.
    return c == OpClass::MovL || c == OpClass::MovB ||
           c == OpClass::Push || c == OpClass::Pop;
}

} // anonymous namespace

CpiEstimate
estimateCpi(const OpHistogram &hist, const CoreParams &params)
{
    CpiEstimate est;
    uint64_t total = hist.total();
    if (total == 0)
        return est;

    uint64_t mem_ops = 0;
    for (size_t i = 0; i < numOpClasses; ++i) {
        auto c = static_cast<OpClass>(i);
        if (isMemoryOp(c))
            mem_ops += hist.count(c);
    }

    double issue_bound = static_cast<double>(total) / params.issueWidth;
    double mem_bound =
        static_cast<double>(mem_ops) / params.loadStorePorts;
    double mul_bound =
        static_cast<double>(hist.count(OpClass::MulL)) * params.mulInterval;

    double cycles = std::max({issue_bound, mem_bound, mul_bound});

    // Penalties are additive on top of the steady-state bound.
    cycles += static_cast<double>(hist.count(OpClass::Jcc)) *
              params.branchMissRate * params.branchMissPenalty;
    cycles += static_cast<double>(hist.count(OpClass::Call)) *
              params.callOverhead;

    est.cycles = cycles;
    est.instructions = static_cast<double>(total);
    est.cpi = cycles / est.instructions;
    return est;
}

} // namespace ssla::perf

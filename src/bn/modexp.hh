/**
 * @file
 * Modular exponentiation — the "computation" step of the paper's
 * Table 7 (97-99% of RSA decryption).
 */

#ifndef SSLA_BN_MODEXP_HH
#define SSLA_BN_MODEXP_HH

#include "bn/bignum.hh"
#include "bn/montgomery.hh"

namespace ssla::bn
{

/**
 * base^exp mod m via 4-bit fixed-window Montgomery exponentiation
 * (odd m), falling back to square-and-multiply with division for even
 * moduli. @p exp must be non-negative. The Montgomery context is built
 * on the calling thread's bn::activeEngine(), which is how DHE and PKI
 * inherit a provider's backend without call-site changes.
 */
BigNum modExp(const BigNum &base, const BigNum &exp, const BigNum &m);

/**
 * base^exp mod m reusing a prebuilt Montgomery context (RSA keeps one
 * context per modulus across all private-key operations). Runs on
 * whichever engine @p ctx was bound to at construction.
 */
BigNum modExpMont(const BigNum &base, const BigNum &exp,
                  const MontgomeryCtx &ctx);

} // namespace ssla::bn

#endif // SSLA_BN_MODEXP_HH

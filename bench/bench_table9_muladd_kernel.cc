/**
 * @file
 * Reproduces Table 9: the instruction body of bn_mul_add_words().
 *
 * The paper lists the nine x86 instructions of the kernel's inner
 * iteration (movl/mull/addl/adcl chain). We print the metered op mix
 * of one kernel invocation normalized per word processed, which is
 * exactly that body plus amortized loop control.
 */

#include <cstdio>

#include "bn/kernels.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bn;
using perf::TablePrinter;

int
main()
{
    constexpr size_t words = 32; // one RSA-1024 operand
    Limb r[words + 1] = {};
    Limb a[words];
    for (size_t i = 0; i < words; ++i)
        a[i] = static_cast<Limb>(0x9e3779b9u * (i + 1));

    perf::CountingMeter meter;
    bnMulAddWordsT(r, a, words, 0xdeadbeef, meter);

    TablePrinter table(
        "Table 9: Op mix of bn_mul_add_words (per 32-word call, "
        "normalized per word)");
    table.setHeader({"op", "count", "per word", "paper body"});
    for (const auto &[name, share] : meter.hist.topOps(12)) {
        (void)share;
        // Recover raw counts for display.
        for (size_t i = 0; i < perf::numOpClasses; ++i) {
            auto cls = static_cast<perf::OpClass>(i);
            if (name != perf::opClassName(cls))
                continue;
            uint64_t count = meter.hist.count(cls);
            const char *body = "";
            if (name == "movl")
                body = "4x (load a[i], load/store r[i], carry move)";
            else if (name == "mull")
                body = "1x (widening multiply)";
            else if (name == "addl")
                body = "2x (+ loop counter, amortized)";
            else if (name == "adcl")
                body = "2x (carry chain)";
            else if (name == "jnz" || name == "cmpl")
                body = "loop control (4x unrolled)";
            table.addRow({name, perf::fmtCount(count),
                          perf::fmtF(static_cast<double>(count) / words,
                                     2),
                          body});
        }
    }
    table.print();

    std::printf("\ntotal ops per word: %.2f "
                "(paper's Table 9 body: 9 instructions + loop)\n",
                static_cast<double>(meter.hist.total()) / words);
    std::printf("paper's listed body: movl, mull, addl, movl, adcl, "
                "addl, adcl, movl, movl\n");
    return 0;
}

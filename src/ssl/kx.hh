/**
 * @file
 * The pluggable key-exchange layer.
 *
 * The paper's central finding is that handshake cost is dominated by
 * the key-exchange crypto (Tables 2/3: RSA is 92–95% of a full
 * handshake), yet which crypto runs is a per-suite decision. This
 * module puts that decision behind an interface: each cipher suite's
 * KxKind maps through a factory to a server-role and a client-role
 * KeyExchange object, and the handshake state machines drive whichever
 * pair the negotiated suite names. Resumption — the kx-free
 * abbreviated handshake — is a first-class (null) implementation, so a
 * cost matrix over {RSA, DHE_RSA, resumption} falls out of one seam.
 *
 * The server-role API is asynchronous: operations that involve the
 * server's RSA private key (the DHE ServerKeyExchange signature, the
 * RSA pre-master decryption) are submitted through the endpoint's
 * crypto provider and reported as KxStatus::Parked while in flight.
 * A pool-backed provider (serve::PooledProvider) completes them on a
 * crypto thread while the serving worker multiplexes its other
 * sessions; a synchronous provider resolves at submit time so the
 * parked state is never observed and the wire transcript is identical.
 *
 * Failure contract: KeyExchange methods throw SslError for protocol
 * failures (bad signature, implausible group); the endpoint's advance()
 * funnel turns an escaped SslError into exactly one fatal alert, the
 * same as a fail() call. Job completion errors (decrypt/sign failures,
 * pool overload) surface from the finish*() calls and are mapped to
 * alerts by the server state machine.
 */

#ifndef SSLA_SSL_KX_HH
#define SSLA_SSL_KX_HH

#include <memory>

#include "crypto/provider.hh"
#include "crypto/rand.hh"
#include "crypto/rsa.hh"
#include "ssl/ciphersuite.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/** The 36-byte MD5||SHA1 digest the ServerKeyExchange signature covers. */
Bytes serverKxDigest(const Bytes &client_random,
                     const Bytes &server_random, const Bytes &params);

/** Outcome of an async-capable key-exchange operation. */
enum class KxStatus
{
    Done,   ///< result available; call the matching finish*()
    Parked, ///< crypto job in flight; poll jobPending(), then finish*()
};

/** What the surrounding handshake lends a KeyExchange implementation. */
struct KxContext
{
    crypto::Provider &provider; ///< crypto engine (async submits)
    crypto::RandomPool &pool;   ///< randomness source
    const Bytes &clientRandom;  ///< 32-byte hello random
    const Bytes &serverRandom;  ///< 32-byte hello random
};

/**
 * Common base of the per-suite key-exchange objects: identity plus the
 * in-flight crypto job that realizes the parking protocol. One
 * KeyExchange instance serves one handshake — it accumulates ephemeral
 * state (DH keys, a pre-master in transit) and is discarded with the
 * connection. Destruction cancels any in-flight job so a pool never
 * runs work against freed session state.
 */
class KeyExchange
{
  public:
    virtual ~KeyExchange();

    KeyExchange(const KeyExchange &) = delete;
    KeyExchange &operator=(const KeyExchange &) = delete;

    /** Static label ("rsa", "dhe_rsa", "resume"). */
    virtual const char *name() const = 0;

    virtual KxKind kind() const = 0;

    /** True while a submitted crypto job exists (resolved or not). */
    bool jobValid() const { return job_.valid(); }

    /** The parking predicate: a job is in flight and not yet done. */
    bool jobPending() const { return job_.valid() && !job_.ready(); }

    /**
     * Trace label of the current/last crypto job ("rsa_decrypt",
     * "rsa_sign"); null when this kx never submitted one.
     */
    const char *jobLabel() const { return jobLabel_; }

    /** Cancel and drop the in-flight job (fatal teardown path). */
    void
    cancelJob()
    {
        job_.cancel();
        job_.reset();
    }

  protected:
    KeyExchange() = default;

    crypto::RsaJob job_;
    const char *jobLabel_ = nullptr;
};

/**
 * Server role. Call sequence on the full handshake path:
 *
 *   if (sendsServerKeyExchange()):
 *     startServerKeyExchange()     -> Parked (signature submitted)
 *     ... poll jobPending() ...
 *     finishServerKeyExchange()    -> encoded ServerKeyExchange body
 *   processClientKeyExchange()     -> Done | Parked (decrypt submitted)
 *   ... poll jobPending() when Parked ...
 *   finishClientKeyExchange()      -> pre-master secret
 */
class ServerKx : public KeyExchange
{
  public:
    /** True when this suite sends a ServerKeyExchange message. */
    virtual bool sendsServerKeyExchange() const { return false; }

    /**
     * Generate the ephemeral parameters and submit the RSA signature
     * over them through ctx.provider (probed as
     * rsa_private_encryption). Always returns Parked: the caller polls
     * jobPending() — with a synchronous provider the job is already
     * resolved and the poll falls straight through.
     * @throws std::logic_error when !sendsServerKeyExchange()
     */
    virtual KxStatus startServerKeyExchange(KxContext &ctx,
                                            const crypto::RsaPrivateKey &key);

    /**
     * Complete the signature and return the encoded ServerKeyExchange
     * body. Rethrows the job's error (e.g. ProviderOverloadError from
     * a saturated pool) — the server maps it to an alert.
     */
    virtual Bytes finishServerKeyExchange();

    /**
     * Consume the ClientKeyExchange body. Done: the pre-master is
     * available from finishClientKeyExchange() immediately. Parked: an
     * RSA decrypt was submitted; poll jobPending().
     * @throws SslError on malformed bodies / failed agreement
     */
    virtual KxStatus
    processClientKeyExchange(KxContext &ctx,
                             const crypto::RsaPrivateKey &key,
                             const Bytes &body) = 0;

    /**
     * Return the pre-master secret. Rethrows the decrypt job's error
     * on the RSA path (ProviderOverloadError, bad-PKCS#1 failures).
     */
    virtual Bytes finishClientKeyExchange() = 0;

    /**
     * True when the pre-master embeds the client's offered protocol
     * version (RSA key transport; the rollback defence the server
     * must enforce).
     */
    virtual bool premasterCarriesVersion() const { return false; }
};

/**
 * Client role: verify/consume the server's key-exchange flight and
 * produce the ClientKeyExchange body plus the pre-master secret.
 */
class ClientKx : public KeyExchange
{
  public:
    /** True when this suite requires a ServerKeyExchange message. */
    virtual bool expectsServerKeyExchange() const { return false; }

    /**
     * Verify and absorb the ServerKeyExchange body against the
     * certificate key.
     * @throws SslError (handshake_failure on a bad signature,
     *         illegal_parameter on an implausible group)
     * @throws std::logic_error when !expectsServerKeyExchange()
     */
    virtual void
    processServerKeyExchange(KxContext &ctx,
                             const crypto::RsaPublicKey &server_key,
                             const Bytes &body);

    /**
     * Produce the ClientKeyExchange body and write the pre-master
     * secret to @p premaster_out (the caller derives the master secret
     * and wipes it). @p offered_version is the version from our
     * ClientHello — the RSA pre-master embeds it (RFC 2246 7.4.7.1).
     */
    virtual Bytes
    makeClientKeyExchange(KxContext &ctx,
                          const crypto::RsaPublicKey &server_key,
                          uint16_t offered_version,
                          Bytes &premaster_out) = 0;
};

/**
 * One row of the suite→KX registry: constructors for both roles of a
 * key-exchange method.
 */
struct KxFactory
{
    KxKind kind;
    const char *name;
    std::unique_ptr<ServerKx> (*makeServer)();
    std::unique_ptr<ClientKx> (*makeClient)();
};

/**
 * Look up the factory for a key-exchange kind.
 * @throws std::invalid_argument for kinds with no registered factory
 */
const KxFactory &kxFactory(KxKind kind);

/** Server-role kx for @p suite (resumption when @p resuming). */
std::unique_ptr<ServerKx> makeServerKx(const CipherSuite &suite,
                                       bool resuming = false);

/** Client-role kx for @p suite (resumption when @p resuming). */
std::unique_ptr<ClientKx> makeClientKx(const CipherSuite &suite,
                                       bool resuming = false);

} // namespace ssla::ssl

#endif // SSLA_SSL_KX_HH

#include "serve/cryptopool.hh"

#include <algorithm>
#include <unordered_map>

#include "obs/export.hh"
#include "util/cycles.hh"

namespace ssla::serve
{

namespace
{

/** Display label for a pool thread's trace span. */
const char *
jobKindLabel(int kind)
{
    switch (kind) {
      case 0: return "rsa_decrypt";
      case 1: return "rsa_sign";
      default: return "raw";
    }
}

/**
 * Per-thread fault PRNG, mirroring the FaultyBio idiom: splitmix64 on
 * the seed, then xorshift for the per-job Bernoulli draws, so fault
 * streams are deterministic per (plan seed, thread slot) and replayable
 * by SSLA_CHAOS_SEED-style machinery.
 */
class FaultRng
{
  public:
    explicit FaultRng(uint64_t seed) : s_(mix(seed)) {}

    static uint64_t
    mix(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return (x ^ (x >> 31)) | 1;
    }

    double
    nextDouble()
    {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return static_cast<double>(s_ >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t s_;
};

thread_local JobBinding tlsJobBinding;

/**
 * Bound on per-thread key replicas: the serving engine uses one server
 * key (occasionally two across a rotation), so eight covers real use
 * while guaranteeing key churn cannot leak Montgomery scratch.
 */
constexpr size_t maxReplicasPerThread = 8;

} // anonymous namespace

const char *
jobClassLabel(JobClass cls)
{
    switch (cls) {
      case JobClass::Resumption: return "resumption";
      case JobClass::Continuation: return "continuation";
      case JobClass::NewFullHandshake: return "new_full";
    }
    return "unknown";
}

JobBinding
currentJobBinding()
{
    return tlsJobBinding;
}

JobBindingScope::JobBindingScope(JobBinding binding) : prev_(tlsJobBinding)
{
    tlsJobBinding = binding;
}

JobBindingScope::~JobBindingScope()
{
    tlsJobBinding = prev_;
}

CryptoPool::CryptoPool(size_t threads, size_t max_queue,
                       OverloadPolicy policy, AdmissionControl admission,
                       CryptoFaultPlan faults)
    : threads_(threads == 0 ? 1 : threads), maxQueue_(max_queue),
      policy_(policy), adm_(admission), faults_(faults)
{
    if (policy_ == OverloadPolicy::Adaptive) {
        // Adaptive defaults: ~2ms CoDel target (a handshake-scale
        // delay: past it, queue wait rivals the RSA op itself), control
        // interval of two targets, and a per-job wait budget of eight
        // targets — by then the session's handshake deadline is blown
        // and executing the job would be pure waste.
        if (adm_.targetDelayCycles == 0)
            adm_.targetDelayCycles =
                static_cast<uint64_t>(cycleHz() / 500.0);
        if (adm_.intervalCycles == 0)
            adm_.intervalCycles = 2 * adm_.targetDelayCycles;
        if (adm_.deadlineBudgetCycles == 0)
            adm_.deadlineBudgetCycles = 8 * adm_.targetDelayCycles;
    } else if (adm_.targetDelayCycles != 0 && adm_.intervalCycles == 0) {
        adm_.intervalCycles = 2 * adm_.targetDelayCycles;
    }
    deathBudget_.store(faults_.maxThreadDeaths, std::memory_order_relaxed);
    intervalStartCycles_ = rdcycles();
    bindMetrics(nullptr);
    workers_.reserve(threads_);
    for (size_t i = 0; i < threads_; ++i)
        spawnWorker();
}

void
CryptoPool::spawnWorker()
{
    std::lock_guard<std::mutex> lock(healthM_);
    size_t index = health_.size();
    ThreadRecord &rec = health_.emplace_back();
    rec.faultSeed = FaultRng::mix(faults_.seed ^ (index + 1));
    rec.heartbeat.store(rdcycles(), std::memory_order_relaxed);
    workers_.emplace_back([this, index] { workerLoop(index); });
}

void
CryptoPool::bindMetrics(obs::MetricsRegistry *reg)
{
    obs::MetricsRegistry &r =
        reg ? *reg : obs::MetricsRegistry::global();
    histQueueWait_ = r.histogram("cryptopool.queue_wait_cycles");
    histService_ = r.histogram("cryptopool.service_cycles");
    ctrCompleted_ = r.counter("cryptopool.completed");
    ctrRejected_ = r.counter("cryptopool.rejected");
    ctrShed_ = r.counter("cryptopool.shed");
    ctrCancelled_ = r.counter("cryptopool.cancelled");
    ctrDeadlineShed_ = r.counter("cryptopool.deadline_shed");
    ctrShedClass_[0] = r.counter("cryptopool.shed_class_resumption");
    ctrShedClass_[1] = r.counter("cryptopool.shed_class_continuation");
    ctrShedClass_[2] = r.counter("cryptopool.shed_class_new_full");
    ctrRestarts_ = r.counter("cryptopool.thread_restarts");
    ctrSupervisedFailures_ = r.counter("cryptopool.supervised_failures");
    gaugeDepth_ = r.gauge("cryptopool.queue_depth");
    gaugeShedding_ = r.gauge("cryptopool.adaptive_shedding");
}

CryptoPool::~CryptoPool()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stopping_ = true;
    }
    cv_.notify_all();
    // Joins every thread ever spawned, including retired zombies (they
    // exit after at most one more job) and replacements. Threads that
    // took a simulated-death fault have already returned.
    for (auto &w : workers_)
        w.join();
}

size_t
CryptoPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(m_);
    return queue_.size();
}

bool
CryptoPool::adaptiveRefuses(JobClass cls) const
{
    switch (cls) {
      case JobClass::NewFullHandshake:
        return sheddingNewFull_.load(std::memory_order_relaxed);
      case JobClass::Continuation:
        return sheddingContinuation_.load(std::memory_order_relaxed);
      case JobClass::Resumption:
        return false;
    }
    return false;
}

void
CryptoPool::countClassShed(JobClass cls)
{
    shedClass_[static_cast<size_t>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    ctrShedClass_[static_cast<size_t>(cls)].inc();
}

void
CryptoPool::controlUpdate(uint64_t now, uint64_t wait_cycles)
{
    // Caller holds m_. Feed the wait sample into the window; at every
    // observation-interval boundary recompute the windowed p99 and flip
    // the per-class shedding flags with hysteresis.
    if (adm_.targetDelayCycles == 0)
        return;
    waitSamples_[waitSampleCount_ % waitWindow] = wait_cycles;
    ++waitSampleCount_;
    if (now - intervalStartCycles_ < adm_.intervalCycles)
        return;
    controlRecompute(now);
}

void
CryptoPool::controlRecompute(uint64_t now)
{
    size_t n = std::min(waitSampleCount_, waitWindow);
    if (n == 0)
        return;
    uint64_t sorted[waitWindow];
    std::copy(waitSamples_, waitSamples_ + n, sorted);
    std::sort(sorted, sorted + n);
    uint64_t p99 = sorted[(n * 99) / 100 >= n ? n - 1 : (n * 99) / 100];
    waitP99_.store(p99, std::memory_order_relaxed);
    if (p99 > adm_.targetDelayCycles) {
        sheddingNewFull_.store(true, std::memory_order_relaxed);
        sheddingContinuation_.store(p99 > 2 * adm_.targetDelayCycles,
                                    std::memory_order_relaxed);
    } else if (p99 < adm_.targetDelayCycles / 2) {
        sheddingNewFull_.store(false, std::memory_order_relaxed);
        sheddingContinuation_.store(false, std::memory_order_relaxed);
    }
    gaugeShedding_.set(
        sheddingNewFull_.load(std::memory_order_relaxed) ? 1 : 0);
    intervalStartCycles_ = now;
    intervalSampleMark_ = waitSampleCount_;
}

void
CryptoPool::controlTouchIdle(uint64_t now)
{
    // Caller holds m_. Dequeues drive the control loop; when the queue
    // drains completely, no samples arrive and a stale "shedding" flag
    // would refuse admissions forever. An empty queue at submit time
    // with a full quiet interval behind it means the pressure is gone.
    if (adm_.targetDelayCycles == 0 || !queue_.empty())
        return;
    if (now - intervalStartCycles_ < adm_.intervalCycles)
        return;
    if (waitSampleCount_ != intervalSampleMark_) {
        // Samples arrived this interval, but the dequeue side never
        // crossed a boundary (lone quick jobs reset nothing): recompute
        // from the window here, so a recovering pool can clear its
        // shedding flags even when jobs arrive one at a time.
        controlRecompute(now);
        return;
    }
    sheddingNewFull_.store(false, std::memory_order_relaxed);
    sheddingContinuation_.store(false, std::memory_order_relaxed);
    waitP99_.store(0, std::memory_order_relaxed);
    gaugeShedding_.set(0);
    intervalStartCycles_ = now;
}

crypto::RsaJob
CryptoPool::enqueue(Job job)
{
    const JobBinding binding = tlsJobBinding;
    job.cls = binding.cls;
    job.state = std::make_shared<crypto::RsaJob::State>();
    crypto::RsaJob handle(job.state);
    {
        std::lock_guard<std::mutex> lock(m_);
        uint64_t now = rdcycles();
        controlTouchIdle(now);
        if (policy_ == OverloadPolicy::Adaptive &&
            adaptiveRefuses(job.cls)) {
            // Control loop says queue wait is past target: losing this
            // handshake now costs nothing but the ClientHello already
            // parsed; losing it after the RSA op costs the whole op.
            countClassShed(job.cls);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            ctrRejected_.inc();
            job.state->finish(
                Bytes(),
                std::make_exception_ptr(crypto::ProviderOverloadError(
                    "CryptoPool: adaptive admission shed")));
            return handle;
        }
        if (maxQueue_ && queue_.size() >= maxQueue_) {
            // Overload: the bound is checked under the same lock that
            // admits jobs, so concurrent submitters cannot overshoot.
            if (policy_ == OverloadPolicy::Reject ||
                (policy_ == OverloadPolicy::Adaptive &&
                 job.cls == JobClass::NewFullHandshake)) {
                countClassShed(job.cls);
                rejected_.fetch_add(1, std::memory_order_relaxed);
                ctrRejected_.inc();
                job.state->finish(
                    Bytes(),
                    std::make_exception_ptr(crypto::ProviderOverloadError(
                        "CryptoPool: queue full")));
                return handle;
            }
            // Shed (and Adaptive for already-invested classes): hand
            // the work back to the caller (synchronous fallback in
            // PooledProvider) via an invalid handle.
            countClassShed(job.cls);
            shed_.fetch_add(1, std::memory_order_relaxed);
            ctrShed_.inc();
            return crypto::RsaJob();
        }
        job.submitCycles = now;
        uint64_t budget = binding.deadlineBudgetCycles
                              ? binding.deadlineBudgetCycles
                              : adm_.deadlineBudgetCycles;
        job.deadlineCycles = budget ? now + budget : 0;
        queue_.push_back(std::move(job));
        uint64_t depth = queue_.size();
        gaugeDepth_.set(static_cast<int64_t>(depth));
        if (depth > peakQueue_.load(std::memory_order_relaxed))
            peakQueue_.store(depth, std::memory_order_relaxed);
    }
    cv_.notify_one();
    return handle;
}

crypto::RsaJob
CryptoPool::submitDecrypt(const crypto::RsaPrivateKey &key, Bytes cipher)
{
    Job job;
    job.kind = Kind::Decrypt;
    job.key = &key;
    job.input = std::move(cipher);
    return enqueue(std::move(job));
}

crypto::RsaJob
CryptoPool::submitSign(const crypto::RsaPrivateKey &key,
                       Bytes digest_data)
{
    Job job;
    job.kind = Kind::Sign;
    job.key = &key;
    job.input = std::move(digest_data);
    return enqueue(std::move(job));
}

crypto::RsaJob
CryptoPool::submitRaw(std::function<Bytes()> fn)
{
    Job job;
    job.kind = Kind::Raw;
    job.fn = std::move(fn);
    return enqueue(std::move(job));
}

size_t
CryptoPool::healthSlots() const
{
    std::lock_guard<std::mutex> lock(healthM_);
    return health_.size();
}

CryptoPool::ThreadRecord *
CryptoPool::recordAt(size_t index) const
{
    // Deque elements have stable addresses, but indexing concurrently
    // with a respawn's emplace_back races on the deque internals, so
    // the lookup itself takes healthM_ (the growth lock).
    std::lock_guard<std::mutex> lock(healthM_);
    if (index >= health_.size())
        return nullptr;
    return const_cast<ThreadRecord *>(&health_[index]);
}

CryptoPool::ThreadHealthView
CryptoPool::healthView(size_t index) const
{
    ThreadHealthView view;
    const ThreadRecord *rec = recordAt(index);
    if (!rec)
        return view;
    view.heartbeatCycles = rec->heartbeat.load(std::memory_order_relaxed);
    view.jobStartCycles = rec->jobStart.load(std::memory_order_relaxed);
    view.busy = rec->busy.load(std::memory_order_relaxed);
    view.retired = rec->retired.load(std::memory_order_relaxed);
    return view;
}

bool
CryptoPool::reapThread(size_t index, const char *reason)
{
    ThreadRecord *recp = recordAt(index);
    if (!recp)
        return false;
    ThreadRecord &rec = *recp;
    std::shared_ptr<crypto::RsaJob::State> victim;
    {
        // m_ serializes retirement against the worker's job pickup
        // (pickup registers inflight under m_ too): either the worker
        // sees retired before taking another job, or we see — and fail
        // — the job it took. No job can slip through unsupervised.
        std::lock_guard<std::mutex> lock(m_);
        if (rec.retired.exchange(true, std::memory_order_acq_rel))
            return false;
        std::lock_guard<std::mutex> jlock(rec.jobM);
        victim = rec.inflight;
    }
    if (victim) {
        // First-wins with the worker itself: if the thread is merely
        // slow (not dead) and completes concurrently, one side's
        // finish() no-ops and the session sees a single resolution.
        supervisedFailures_.fetch_add(1, std::memory_order_relaxed);
        ctrSupervisedFailures_.inc();
        victim->finish(
            Bytes(), std::make_exception_ptr(crypto::ProviderFailureError(
                         std::string("CryptoPool: thread reaped: ") +
                         (reason ? reason : "stall"))));
    }
    // Wake every waiter: a retired-but-alive zombie idling on the
    // condition variable must re-check its flag and exit.
    cv_.notify_all();
    threadRestarts_.fetch_add(1, std::memory_order_relaxed);
    ctrRestarts_.inc();
    spawnWorker();
    return true;
}

void
CryptoPool::workerLoop(size_t index)
{
    ThreadRecord &rec = *recordAt(index);
    FaultRng rng(rec.faultSeed);

    // Flight recorder for this pool thread: one span per executed job,
    // on its own export track so crypto service time lines up against
    // the worker tracks in the Chrome trace. Cheap enough to keep
    // unconditionally; only dumped when a sink is bound at exit.
    obs::SessionTrace trace(obs::cryptoTrackBase + index,
                            obs::cryptoTrackBase + index);

    // Per-thread private-key replicas, keyed by the submitter's key
    // object. Cloning rebuilds the Montgomery contexts and blinding
    // state, so this thread owns every mutable buffer it touches (the
    // bn-layer single-owner contract); decrypt/sign results are
    // unaffected because the private-key operation is deterministic
    // modulo blinding, which cancels by construction. The cache is
    // bounded: past maxReplicasPerThread the oldest replica is evicted,
    // so key churn cannot leak Montgomery scratch.
    std::unordered_map<const crypto::RsaPrivateKey *,
                       std::unique_ptr<crypto::RsaPrivateKey>>
        replicas;
    std::vector<const crypto::RsaPrivateKey *> replicaOrder;
    auto replica =
        [&](const crypto::RsaPrivateKey *key) -> crypto::RsaPrivateKey & {
        auto it = replicas.find(key);
        if (it == replicas.end()) {
            if (replicas.size() >= maxReplicasPerThread) {
                replicas.erase(replicaOrder.front());
                replicaOrder.erase(replicaOrder.begin());
                replicas_.fetch_sub(1, std::memory_order_relaxed);
            }
            // Replicas inherit the source key's bn engine, so a bn64
            // (fast-provider) key stays bn64 across the pool and a
            // paper-era bn32 key keeps its profiling anchor.
            auto clone = std::make_unique<crypto::RsaPrivateKey>(
                key->publicKey().n, key->publicKey().e, key->d(),
                key->p(), key->q(), &key->bnEngine());
            it = replicas.emplace(key, std::move(clone)).first;
            replicaOrder.push_back(key);
            replicas_.fetch_add(1, std::memory_order_relaxed);
        }
        return *it->second;
    };
    // Balance the replica count on every exit path — normal drain,
    // retired zombies, and even simulated-death returns (the job stays
    // unresolved like a real crash, but the accounting stays exact so
    // the leak test can assert on it).
    struct ReplicaUnwind
    {
        std::atomic<uint64_t> &count;
        std::unordered_map<const crypto::RsaPrivateKey *,
                           std::unique_ptr<crypto::RsaPrivateKey>> &map;
        ~ReplicaUnwind()
        {
            count.fetch_sub(map.size(), std::memory_order_relaxed);
        }
    } unwind{replicas_, replicas};

    for (;;) {
        rec.heartbeat.store(rdcycles(), std::memory_order_relaxed);
        Job job;
        uint64_t startCycles = 0;
        {
            std::unique_lock<std::mutex> lock(m_);
            cv_.wait(lock, [&] {
                return stopping_ ||
                       rec.retired.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (rec.retired.load(std::memory_order_relaxed))
                break;
            if (queue_.empty())
                break; // stopping and drained
            job = std::move(queue_.front());
            queue_.pop_front();
            gaugeDepth_.set(static_cast<int64_t>(queue_.size()));
            startCycles = rdcycles();
            controlUpdate(startCycles, startCycles - job.submitCycles);
            // Register the in-flight job before releasing m_ so a
            // concurrent reapThread (which also holds m_) either
            // retires us before this pickup or sees this job.
            std::lock_guard<std::mutex> jlock(rec.jobM);
            rec.inflight = job.state;
            rec.jobStart.store(startCycles, std::memory_order_relaxed);
            rec.busy.store(true, std::memory_order_relaxed);
        }
        histQueueWait_.record(startCycles - job.submitCycles);
        auto clearInflight = [&] {
            std::lock_guard<std::mutex> jlock(rec.jobM);
            rec.inflight.reset();
            rec.busy.store(false, std::memory_order_relaxed);
        };
        if (job.state->cancelled.load(std::memory_order_acquire)) {
            // The submitter tore the session down while the job was
            // queued: skip execution entirely — in particular, never
            // touch job.key, whose owner may already be gone — but
            // still finish() so a straggling waiter unblocks.
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            ctrCancelled_.inc();
            job.state->finish(
                Bytes(), std::make_exception_ptr(std::runtime_error(
                             "CryptoPool: job cancelled")));
            clearInflight();
            continue;
        }
        if (job.deadlineCycles && startCycles > job.deadlineCycles) {
            // Deadline shed: the job waited past its budget, so its
            // session's handshake deadline is already blown — spending
            // a Montgomery context on it now is pure waste. Fail it
            // before execution; the endpoint maps the overload family
            // to a fatal internal_error alert.
            deadlineShed_.fetch_add(1, std::memory_order_relaxed);
            ctrDeadlineShed_.inc();
            countClassShed(job.cls);
            trace.record(obs::TraceEventKind::DeadlineFired,
                         obs::traceSideEngine, jobClassLabel(job.cls),
                         static_cast<uint16_t>(
                             static_cast<uint8_t>(job.cls) + 1),
                         startCycles - job.submitCycles);
            job.state->finish(
                Bytes(),
                std::make_exception_ptr(crypto::ProviderDeadlineError(
                    "CryptoPool: queue wait exceeded deadline budget")));
            clearInflight();
            continue;
        }
        // Crypto-side fault surface (chaos tests): draw once per job.
        std::exception_ptr err;
        if (faults_.any()) {
            if (faults_.threadDeathRate > 0.0 &&
                rng.nextDouble() < faults_.threadDeathRate) {
                uint64_t budget =
                    deathBudget_.load(std::memory_order_relaxed);
                while (budget != 0 &&
                       !deathBudget_.compare_exchange_weak(
                           budget, budget - 1,
                           std::memory_order_relaxed))
                    ;
                if (budget != 0) {
                    // Simulated crash: exit without resolving the job
                    // or clearing busy/inflight — exactly the state a
                    // dead thread leaves behind. Only the Supervisor
                    // can recover the parked session from here.
                    return;
                }
            }
            if (faults_.failRate > 0.0 &&
                rng.nextDouble() < faults_.failRate)
                err = std::make_exception_ptr(std::runtime_error(
                    "CryptoPool: injected job failure"));
            if (faults_.slowdownRate > 0.0 &&
                rng.nextDouble() < faults_.slowdownRate) {
                // Spin without heartbeating: to the Supervisor this is
                // indistinguishable from a genuinely wedged thread.
                uint64_t until = rdcycles() + faults_.slowdownCycles;
                while (rdcycles() < until)
                    ;
            }
        }
        // code carries the admission class (JobClass + 1, 0 = unknown)
        // so the queue-delay analysis pass can split wait/service per
        // class without joining back to the submitting session.
        trace.record(obs::TraceEventKind::JobStart,
                     obs::traceSideEngine,
                     jobKindLabel(static_cast<int>(job.kind)),
                     static_cast<uint16_t>(
                         static_cast<uint8_t>(job.cls) + 1),
                     startCycles - job.submitCycles);
        Bytes result;
        if (!err) {
            try {
                switch (job.kind) {
                  case Kind::Decrypt:
                    result = crypto::rsaPrivateDecrypt(replica(job.key),
                                                       job.input);
                    break;
                  case Kind::Sign:
                    result = crypto::rsaSign(replica(job.key), job.input);
                    break;
                  case Kind::Raw:
                    result = job.fn();
                    break;
                }
            } catch (...) {
                err = std::current_exception();
            }
        }
        uint64_t endCycles = rdcycles();
        histService_.record(endCycles - startCycles);
        trace.record(obs::TraceEventKind::JobEnd, obs::traceSideEngine,
                     jobKindLabel(static_cast<int>(job.kind)),
                     err ? 1 : 0, endCycles - startCycles);
        // Count before finish(): a waiter released by finish() must
        // already observe this job in completedJobs().
        completed_.fetch_add(1, std::memory_order_relaxed);
        ctrCompleted_.inc();
        job.state->finish(std::move(result), std::move(err));
        clearInflight();
        if (rec.retired.load(std::memory_order_acquire))
            break; // reaped while running: a replacement exists, bow out
    }

    trace.noteOutcome("pool-exit");
    if (obs::TraceSink *sink =
            traceSink_.load(std::memory_order_acquire);
        sink && trace.recorded())
        sink->dump(trace);
}

// ---------------------------------------------------------------------
// PooledProvider

PooledProvider::PooledProvider(CryptoPool &pool, crypto::Provider *inner)
    : pool_(pool), inner_(inner ? *inner : crypto::scalarProvider())
{
}

std::unique_ptr<crypto::Cipher>
PooledProvider::createCipher(crypto::CipherAlg alg, const Bytes &key,
                             const Bytes &iv, bool encrypt)
{
    return inner_.createCipher(alg, key, iv, encrypt);
}

std::unique_ptr<crypto::Digest>
PooledProvider::createDigest(crypto::DigestAlg alg)
{
    return inner_.createDigest(alg);
}

std::unique_ptr<crypto::Hmac>
PooledProvider::createHmac(crypto::DigestAlg alg, const Bytes &key)
{
    return inner_.createHmac(alg, key);
}

size_t
PooledProvider::recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
                          uint8_t type, ConstSpan data, uint8_t *mac_out)
{
    return inner_.recordMac(spec, seq, type, data, mac_out);
}

Bytes
PooledProvider::rsaDecrypt(const crypto::RsaPrivateKey &key,
                           const Bytes &cipher)
{
    return inner_.rsaDecrypt(key, cipher);
}

Bytes
PooledProvider::rsaSign(const crypto::RsaPrivateKey &key,
                        const Bytes &digest_data)
{
    return inner_.rsaSign(key, digest_data);
}

crypto::RsaJob
PooledProvider::submitRsaDecrypt(const crypto::RsaPrivateKey &key,
                                 Bytes cipher)
{
    crypto::RsaJob job = pool_.submitDecrypt(key, cipher);
    if (job.valid())
        return job;
    // Shed policy, queue full: degrade to the synchronous baseline on
    // the submitting worker. Safe with @p key: the caller owns it and
    // we are on the caller's thread (the pool only ever runs clones).
    return Provider::submitRsaDecrypt(key, std::move(cipher));
}

crypto::RsaJob
PooledProvider::submitRsaSign(const crypto::RsaPrivateKey &key,
                              Bytes digest_data)
{
    crypto::RsaJob job = pool_.submitSign(key, digest_data);
    if (job.valid())
        return job;
    return Provider::submitRsaSign(key, std::move(digest_data));
}

} // namespace ssla::serve

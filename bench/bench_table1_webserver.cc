/**
 * @file
 * Reproduces Table 1: execution-time breakdown of a 1 KB HTTPS web
 * transaction across server "modules" (libcrypto / libssl / httpd /
 * vmlinux / other).
 *
 * SSL and crypto cycles are measured on real handshakes + transfers;
 * the kernel/httpd/other rows come from the calibrated model
 * (see src/web/kernelmodel.hh and DESIGN.md).
 */

#include <cstdio>

#include "perf/report.hh"
#include "web/httpsim.hh"

using namespace ssla;
using namespace ssla::web;
using perf::TablePrinter;

int
main()
{
    WebSimConfig cfg;
    WebSimulator sim(cfg);

    constexpr size_t file_size = 1024;
    constexpr size_t transactions = 30;

    // Warm-up transaction (key setup, table generation).
    sim.runTransaction(file_size);
    TransactionStats stats = sim.runWorkload(transactions, file_size);

    double total = stats.total();
    auto pct = [&](double v) { return 100.0 * v / total; };

    TablePrinter table(
        "Table 1: Execution time breakdown in web server "
        "(1KB page, DES-CBC3-SHA, RSA-1024)");
    table.setHeader({"Components", "Functionality", "%", "paper %"});
    table.addRow({"libcrypto", "crypto library (measured)",
                  perf::fmtPct(pct(stats.cryptoTotal)), "70.83"});
    table.addRow({"libssl", "SSL functions (measured)",
                  perf::fmtPct(pct(stats.libssl())), "0.82"});
    table.addRow({"httpd", "web server (modeled)",
                  perf::fmtPct(pct(stats.httpdCycles)), "1.84"});
    table.addRow({"vmlinux", "kernel TCP stack (modeled)",
                  perf::fmtPct(pct(stats.kernelCycles)), "17.51"});
    table.addRow({"other", "libc/threads (modeled)",
                  perf::fmtPct(pct(stats.otherCycles)), "9.00"});
    table.addRule();
    table.addRow({"total", perf::fmt("%.1f Mcycles/transaction",
                                     total / transactions / 1e6),
                  "100%", "100%"});
    table.print();

    std::printf("\nSSL processing share: %.1f%% (paper: 71.6%%)\n",
                pct(static_cast<double>(stats.sslTotal)));
    std::printf("wire bytes/transaction: %.0f\n",
                static_cast<double>(stats.wireBytes) / transactions);
    return 0;
}

/**
 * @file
 * Full-handshake integration tests: every cipher suite, session
 * resumption, certificate validation paths, negative cases and
 * application-data exchange.
 */

#include <gtest/gtest.h>

#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

struct Harness
{
    BioPair wires;
    ServerConfig scfg;
    ClientConfig ccfg;
    crypto::RandomPool pool{toBytes("handshake-tests")};

    Harness()
    {
        scfg.certificate = test::testServerCert();
        scfg.privateKey = test::testKey1024().priv;
        scfg.randomPool = &pool;
        ccfg.randomPool = &pool;
    }

    std::pair<std::unique_ptr<SslClient>, std::unique_ptr<SslServer>>
    connect()
    {
        auto server =
            std::make_unique<SslServer>(scfg, wires.serverEnd());
        auto client =
            std::make_unique<SslClient>(ccfg, wires.clientEnd());
        runLockstep(*client, *server);
        return {std::move(client), std::move(server)};
    }
};

class HandshakeSuites : public ::testing::TestWithParam<CipherSuiteId>
{};

TEST_P(HandshakeSuites, CompletesAndTransfersData)
{
    Harness h;
    h.scfg.suites = {GetParam()};
    h.ccfg.suites = {GetParam()};
    auto [client, server] = h.connect();

    EXPECT_TRUE(client->handshakeDone());
    EXPECT_TRUE(server->handshakeDone());
    EXPECT_EQ(client->suite().id, GetParam());
    EXPECT_EQ(server->suite().id, GetParam());
    EXPECT_FALSE(client->resumed());

    // Bidirectional application data.
    client->writeApplicationData(toBytes("ping"));
    auto got = server->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "ping");

    server->writeApplicationData(toBytes("pong"));
    got = client->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "pong");
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, HandshakeSuites,
    ::testing::Values(CipherSuiteId::RSA_NULL_MD5,
                      CipherSuiteId::RSA_RC4_128_MD5,
                      CipherSuiteId::RSA_RC4_128_SHA,
                      CipherSuiteId::RSA_DES_CBC_SHA,
                      CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                      CipherSuiteId::RSA_AES_128_CBC_SHA,
                      CipherSuiteId::RSA_AES_256_CBC_SHA));

TEST(Handshake, ServerPreferenceWins)
{
    Harness h;
    h.ccfg.suites = {CipherSuiteId::RSA_RC4_128_MD5,
                     CipherSuiteId::RSA_3DES_EDE_CBC_SHA};
    h.scfg.suites = {CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                     CipherSuiteId::RSA_RC4_128_MD5};
    auto [client, server] = h.connect();
    EXPECT_EQ(server->suite().id, CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
}

TEST(Handshake, NoCommonSuiteFails)
{
    Harness h;
    h.ccfg.suites = {CipherSuiteId::RSA_RC4_128_MD5};
    h.scfg.suites = {CipherSuiteId::RSA_AES_256_CBC_SHA};
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    EXPECT_THROW(runLockstep(client, server), SslError);
}

TEST(Handshake, CertificateVerificationAgainstIssuer)
{
    Harness h;
    h.ccfg.trustedIssuer = &test::testKey1024().pub; // self-signed
    auto [client, server] = h.connect();
    EXPECT_TRUE(client->handshakeDone());
    EXPECT_EQ(client->serverCertificate().info().subject,
              "unit.test.server");
}

TEST(Handshake, WrongIssuerRejected)
{
    Harness h;
    h.ccfg.trustedIssuer = &test::otherKey1024().pub;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::BadCertificate);
    }
}

TEST(Handshake, SubjectMismatchRejected)
{
    Harness h;
    h.ccfg.expectedSubject = "some.other.host";
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::CertificateUnknown);
    }
}

TEST(Handshake, ExpiredCertificateRejected)
{
    Harness h;
    h.ccfg.currentTime = 3000000000ull; // past notAfter
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    try {
        runLockstep(client, server);
        FAIL() << "handshake should have failed";
    } catch (const SslError &e) {
        EXPECT_EQ(e.alert(), AlertDescription::CertificateExpired);
    }
}

TEST(Handshake, ValidTimeAccepted)
{
    Harness h;
    h.ccfg.currentTime = 5000; // inside the window
    auto [client, server] = h.connect();
    EXPECT_TRUE(client->handshakeDone());
}

TEST(Handshake, SessionResumptionSkipsRsa)
{
    Harness h;
    SessionCache cache;
    h.scfg.sessionCache = &cache;

    auto [client1, server1] = h.connect();
    Session sess = client1->session();
    EXPECT_TRUE(sess.valid());
    EXPECT_EQ(cache.size(), 1u);

    // Second connection offering the session.
    Harness h2;
    h2.scfg.sessionCache = &cache;
    h2.ccfg.resumeSession = sess;
    auto [client2, server2] = h2.connect();
    EXPECT_TRUE(client2->resumed());
    EXPECT_TRUE(server2->resumed());
    EXPECT_EQ(client2->session().id, sess.id);

    // Data still flows.
    client2->writeApplicationData(toBytes("resumed data"));
    auto got = server2->readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "resumed data");
}

TEST(Handshake, UnknownSessionIdFallsBackToFull)
{
    Harness h;
    SessionCache cache;
    h.scfg.sessionCache = &cache;
    Session bogus;
    bogus.id = Bytes(32, 0xfe);
    bogus.suiteId =
        static_cast<uint16_t>(CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    bogus.masterSecret = Bytes(48, 1);
    h.ccfg.resumeSession = bogus;

    auto [client, server] = h.connect();
    EXPECT_FALSE(client->resumed());
    EXPECT_FALSE(server->resumed());
    EXPECT_TRUE(client->handshakeDone());
}

TEST(Handshake, ResumptionWithoutServerCacheFallsBack)
{
    Harness h;
    auto [client1, server1] = h.connect(); // no cache configured
    Harness h2;
    h2.ccfg.resumeSession = client1->session();
    auto [client2, server2] = h2.connect();
    EXPECT_FALSE(client2->resumed());
    EXPECT_TRUE(client2->handshakeDone());
}

TEST(Handshake, CloseNotify)
{
    Harness h;
    auto [client, server] = h.connect();
    client->close();
    EXPECT_FALSE(server->peerClosed());
    EXPECT_FALSE(server->readApplicationData());
    EXPECT_TRUE(server->peerClosed());
    // close() is idempotent.
    client->close();
}

TEST(Handshake, LargeTransferBothDirections)
{
    Harness h;
    auto [client, server] = h.connect();
    Xoshiro256 rng(12);
    Bytes big = rng.bytes(100000);

    client->writeApplicationData(big);
    Bytes got;
    while (got.size() < big.size()) {
        auto chunk = server->readApplicationData();
        ASSERT_TRUE(chunk);
        append(got, *chunk);
    }
    EXPECT_EQ(got, big);

    server->writeApplicationData(big);
    got.clear();
    while (got.size() < big.size()) {
        auto chunk = client->readApplicationData();
        ASSERT_TRUE(chunk);
        append(got, *chunk);
    }
    EXPECT_EQ(got, big);
}

TEST(Handshake, AppDataBeforeHandshakeThrows)
{
    Harness h;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());
    EXPECT_THROW(client.writeApplicationData(toBytes("early")),
                 std::logic_error);
    EXPECT_THROW(client.suite(), std::logic_error);
}

TEST(Handshake, ServerRequiresKeyAndSuites)
{
    Harness h;
    ServerConfig bad = h.scfg;
    bad.privateKey = nullptr;
    EXPECT_THROW(SslServer(bad, h.wires.serverEnd()),
                 std::invalid_argument);
    bad = h.scfg;
    bad.suites.clear();
    EXPECT_THROW(SslServer(bad, h.wires.serverEnd()),
                 std::invalid_argument);
    ClientConfig badc = h.ccfg;
    badc.suites.clear();
    EXPECT_THROW(SslClient(badc, h.wires.clientEnd()),
                 std::invalid_argument);
}

TEST(Handshake, GarbageFromClientFailsCleanly)
{
    Harness h;
    SslServer server(h.scfg, h.wires.serverEnd());
    // Valid record header framing a non-ClientHello handshake message.
    HandshakeMessage bogus{HandshakeType::Finished, Bytes(36, 0)};
    Bytes wire = bogus.encode();
    Bytes record = {22, 3, 0, static_cast<uint8_t>(wire.size() >> 8),
                    static_cast<uint8_t>(wire.size())};
    append(record, wire);
    h.wires.clientEnd().write(record);
    EXPECT_THROW(server.advance(), SslError);
}

TEST(Handshake, TranscriptTamperBreaksFinished)
{
    // A man-in-the-middle flips a bit in the clear part of the
    // handshake (the server random); both finished checks must fail.
    Harness h;
    SslServer server(h.scfg, h.wires.serverEnd());
    SslClient client(h.ccfg, h.wires.clientEnd());

    // Client hello flows normally.
    client.advance();
    server.advance(); // server emits hello/cert/done

    // Corrupt a byte of the server's first flight in transit.
    BioEndpoint ce = h.wires.clientEnd();
    Bytes buf(8192);
    size_t n = ce.peek(buf.data(), buf.size());
    ASSERT_GT(n, 20u);
    buf[15] ^= 0x01; // inside ServerHello.random
    ce.consume(n);
    // Re-inject by writing into the stream the client reads. The
    // endpoint writes go the wrong way, so use a fresh pair approach:
    // instead, write via the server's endpoint (which feeds client).
    h.wires.serverEnd().write(buf.data(), n);

    EXPECT_THROW(
        {
            for (int i = 0; i < 20; ++i) {
                client.advance();
                server.advance();
            }
        },
        SslError);
}

} // anonymous namespace

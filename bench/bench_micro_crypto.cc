/**
 * @file
 * Google-benchmark microbenchmarks of every crypto primitive — raw
 * latency/throughput numbers complementing the table reproductions.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "crypto/aes.hh"
#include "crypto/cipher.hh"
#include "crypto/des.hh"
#include "crypto/hmac.hh"
#include "crypto/md5.hh"
#include "crypto/rc4.hh"
#include "crypto/rsa.hh"
#include "crypto/sha1.hh"
#include "ssl/kdf.hh"
#include "ssl/record.hh"

using namespace ssla;
using namespace ssla::crypto;

namespace
{

void
BM_Md5(benchmark::State &state)
{
    Bytes data = bench::benchPayload(state.range(0));
    Md5 md;
    uint8_t out[16];
    for (auto _ : state) {
        md.init();
        md.update(data.data(), data.size());
        md.final(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_Sha1(benchmark::State &state)
{
    Bytes data = bench::benchPayload(state.range(0));
    Sha1 sha;
    uint8_t out[20];
    for (auto _ : state) {
        sha.init();
        sha.update(data.data(), data.size());
        sha.final(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_HmacSha1(benchmark::State &state)
{
    Bytes key = bench::benchPayload(20, 1);
    Bytes data = bench::benchPayload(state.range(0));
    for (auto _ : state) {
        Bytes tag = Hmac::compute(DigestAlg::SHA1, key, data);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(1024);

void
BM_AesBlock(benchmark::State &state)
{
    Aes aes(bench::benchPayload(state.range(0) / 8, 2));
    uint8_t block[16] = {};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesBlock)->Arg(128)->Arg(192)->Arg(256);

void
BM_AesKeySetup(benchmark::State &state)
{
    Bytes key = bench::benchPayload(16, 3);
    AesKey ks;
    for (auto _ : state) {
        aesSetEncryptKey(key.data(), 128, ks);
        benchmark::DoNotOptimize(ks);
    }
}
BENCHMARK(BM_AesKeySetup);

void
BM_DesBlock(benchmark::State &state)
{
    Des des(bench::benchPayload(8, 4));
    uint8_t block[8] = {};
    for (auto _ : state) {
        des.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DesBlock);

void
BM_TripleDesBlock(benchmark::State &state)
{
    TripleDes tdes(bench::benchPayload(24, 5));
    uint8_t block[8] = {};
    for (auto _ : state) {
        tdes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 8);
}
BENCHMARK(BM_TripleDesBlock);

void
BM_CbcBulk(benchmark::State &state)
{
    auto alg = static_cast<CipherAlg>(state.range(0));
    const auto &info = cipherInfo(alg);
    Bytes key = bench::benchPayload(info.keyLen, 6);
    Bytes iv = bench::benchPayload(info.ivLen, 7);
    Bytes data = bench::benchPayload(16384, 8);
    auto cipher = bench::benchProvider().createCipher(alg, key, iv, true);
    for (auto _ : state) {
        cipher->process(data.data(), data.data(), data.size());
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(state.iterations() * data.size());
    state.SetLabel(info.name);
}
BENCHMARK(BM_CbcBulk)
    ->Arg(static_cast<int>(CipherAlg::Rc4_128))
    ->Arg(static_cast<int>(CipherAlg::DesCbc))
    ->Arg(static_cast<int>(CipherAlg::Des3Cbc))
    ->Arg(static_cast<int>(CipherAlg::Aes128Cbc))
    ->Arg(static_cast<int>(CipherAlg::Aes256Cbc));

void
BM_Rc4KeySetup(benchmark::State &state)
{
    Bytes key = bench::benchPayload(16, 9);
    for (auto _ : state) {
        Rc4 rc4(key);
        benchmark::DoNotOptimize(&rc4);
    }
}
BENCHMARK(BM_Rc4KeySetup);

void
BM_RsaPrivateDecrypt(benchmark::State &state)
{
    const auto &kp = bench::benchKey(state.range(0));
    RandomPool pool(Bytes{1});
    Bytes cipher = rsaPublicEncrypt(kp.pub, Bytes(48, 2), pool);
    for (auto _ : state) {
        Bytes out = rsaPrivateDecrypt(*kp.priv, cipher);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_RsaPrivateDecrypt)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void
BM_RsaPublicEncrypt(benchmark::State &state)
{
    const auto &kp = bench::benchKey(state.range(0));
    RandomPool pool(Bytes{2});
    for (auto _ : state) {
        Bytes out = rsaPublicEncrypt(kp.pub, Bytes(48, 2), pool);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_RsaPublicEncrypt)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void
BM_Ssl3MasterSecret(benchmark::State &state)
{
    Bytes pre(48, 1), cr(32, 2), sr(32, 3);
    for (auto _ : state) {
        Bytes master = ssl::ssl3MasterSecret(pre, cr, sr);
        benchmark::DoNotOptimize(master);
    }
}
BENCHMARK(BM_Ssl3MasterSecret);

void
BM_Ssl3Mac(benchmark::State &state)
{
    Bytes secret(20, 1);
    Bytes data = bench::benchPayload(state.range(0), 10);
    for (auto _ : state) {
        Bytes mac = ssl::ssl3Mac(DigestAlg::SHA1, secret, 0, 23,
                                 data.data(), data.size());
        benchmark::DoNotOptimize(mac);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Ssl3Mac)->Arg(1024)->Arg(16384);

} // anonymous namespace

BENCHMARK_MAIN();

/**
 * @file
 * Quickstart: the smallest complete use of the library's public API.
 *
 * Generates an RSA key, issues a certificate, runs an SSLv3 handshake
 * between an in-process client and server over memory BIOs (the
 * paper's ssltest arrangement), and exchanges a couple of messages.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

using namespace ssla;
using namespace ssla::ssl;

int
main()
{
    // 1. Server identity: RSA-1024 key + self-signed certificate.
    Xoshiro256 seed(2024);
    bn::RngFunc rng = [&](uint8_t *out, size_t len) {
        seed.fill(out, len);
    };
    std::printf("generating RSA-1024 key...\n");
    crypto::RsaKeyPair key = crypto::rsaGenerateKey(1024, rng);

    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Quickstart CA";
    info.subject = "quickstart.example";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    // 2. Wire the two endpoints together with in-memory BIOs.
    BioPair wires;

    ServerConfig scfg;
    scfg.certificate = cert;
    scfg.privateKey = key.priv;
    scfg.suites = {CipherSuiteId::RSA_3DES_EDE_CBC_SHA};
    SslServer server(scfg, wires.serverEnd());

    ClientConfig ccfg;
    ccfg.trustedIssuer = &key.pub; // verify the self-signed cert
    ccfg.expectedSubject = "quickstart.example";
    SslClient client(ccfg, wires.clientEnd());

    // 3. Handshake (lockstep, non-blocking state machines).
    runLockstep(client, server);
    std::printf("handshake complete: suite=%s, session id=%zu bytes\n",
                client.suite().name, client.session().id.size());
    std::printf("server cert subject: %s\n",
                client.serverCertificate().info().subject.c_str());

    // 4. Exchange application data over the encrypted channel.
    client.writeApplicationData(toBytes("Hello over SSLv3!"));
    if (auto msg = server.readApplicationData())
        std::printf("server received: %s\n", toString(*msg).c_str());

    server.writeApplicationData(toBytes("Hello back, client."));
    if (auto msg = client.readApplicationData())
        std::printf("client received: %s\n", toString(*msg).c_str());

    // 5. Clean shutdown.
    client.close();
    server.readApplicationData(); // observe close_notify
    std::printf("connection closed cleanly: %s\n",
                server.peerClosed() ? "yes" : "no");
    return 0;
}

#include "crypto/digest.hh"

#include <stdexcept>

#include "crypto/md5.hh"
#include "crypto/sha1.hh"

namespace ssla::crypto
{

Bytes
Digest::final()
{
    Bytes out(digestSize());
    final(out.data());
    return out;
}

std::unique_ptr<Digest>
Digest::create(DigestAlg alg)
{
    switch (alg) {
      case DigestAlg::MD5:
        return std::make_unique<Md5>();
      case DigestAlg::SHA1:
        return std::make_unique<Sha1>();
    }
    throw std::invalid_argument("Digest::create: unknown algorithm");
}

size_t
Digest::digestSize(DigestAlg alg)
{
    switch (alg) {
      case DigestAlg::MD5:
        return Md5::outputSize;
      case DigestAlg::SHA1:
        return Sha1::outputSize;
    }
    throw std::invalid_argument("Digest::digestSize: unknown algorithm");
}

Bytes
digestOneShot(DigestAlg alg, const Bytes &data)
{
    auto d = Digest::create(alg);
    d->update(data);
    return d->final();
}

} // namespace ssla::crypto

/**
 * @file
 * Telemetry subsystem tests: histogram geometry and percentile
 * accuracy, metrics-registry sharding and the disabled fast path,
 * session trace rings, trace export well-formedness, the chaos flight
 * recorder (a forced fault failure dumps a trace naming the fault and
 * the resulting alert), the PerfContext → registry bridge, the
 * pluggable log sink and JsonWriter escaping.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "../bench/common.hh"
#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "perf/probe.hh"
#include "serve/engine.hh"
#include "ssl/client.hh"
#include "ssl/faultbio.hh"
#include "ssl/server.hh"
#include "testkeys.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using obs::HistogramLayout;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::SessionTrace;
using obs::TraceEvent;
using obs::TraceEventKind;

uint64_t
chaosSeed()
{
    if (const char *env = std::getenv("SSLA_CHAOS_SEED"))
        return std::strtoull(env, nullptr, 0);
    return 0x5eed0;
}

// ---------------------------------------------------------------------
// Histogram geometry

TEST(ObsHistogram, BucketBoundariesPowersOfTwo)
{
    // Values below linearMax get exact unit-width buckets.
    for (uint64_t v = 0; v < HistogramLayout::linearMax; ++v) {
        size_t i = HistogramLayout::bucketIndex(v);
        EXPECT_EQ(i, v);
        EXPECT_EQ(HistogramLayout::lowerBound(i), v);
        EXPECT_EQ(HistogramLayout::upperBound(i), v + 1);
    }
    // Every power of two is a bucket lower bound (exactly representable).
    for (unsigned k = HistogramLayout::subBits + 1; k < 63; ++k) {
        uint64_t v = 1ull << k;
        size_t i = HistogramLayout::bucketIndex(v);
        EXPECT_EQ(HistogramLayout::lowerBound(i), v)
            << "power 2^" << k;
        EXPECT_LT(v, HistogramLayout::upperBound(i));
    }
    // Index is monotone and every value lands inside its own bucket.
    Xoshiro256 rng(0xb0b);
    size_t prev = 0;
    uint64_t prev_v = 0;
    for (int n = 0; n < 10000; ++n) {
        uint64_t v = rng.next() >> (rng.next() % 60);
        size_t i = HistogramLayout::bucketIndex(v);
        EXPECT_GE(v, HistogramLayout::lowerBound(i));
        EXPECT_LT(v, HistogramLayout::upperBound(i));
        if (v >= prev_v) {
            EXPECT_GE(i, prev);
        }
        prev = i;
        prev_v = v;
    }
    // Relative bucket width beyond the linear range is <= 1/32.
    for (size_t i = HistogramLayout::linearMax;
         i < HistogramLayout::bucketCount; ++i) {
        uint64_t lo = HistogramLayout::lowerBound(i);
        uint64_t hi = HistogramLayout::upperBound(i);
        if (hi <= lo || hi == ~uint64_t(0))
            continue; // saturated top bucket
        EXPECT_LE(static_cast<double>(hi - lo),
                  static_cast<double>(lo) / HistogramLayout::subCount +
                      1.0)
            << "bucket " << i;
    }
}

TEST(ObsHistogram, PercentileOracle)
{
    MetricsRegistry reg;
    obs::Histogram h = reg.histogram("oracle");
    Xoshiro256 rng(0x0c1e);
    std::vector<uint64_t> values;
    values.reserve(10000);
    for (int n = 0; n < 10000; ++n) {
        // Mixed magnitudes: exercise linear buckets and several octaves.
        uint64_t v = rng.next() % (1ull << (6 + rng.next() % 30));
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());

    HistogramSnapshot snap = reg.snapshot().histogram("oracle");
    ASSERT_EQ(snap.count, values.size());
    EXPECT_EQ(snap.min, values.front());
    EXPECT_EQ(snap.max, values.back());

    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        size_t rank = static_cast<size_t>(p / 100.0 * values.size());
        if (rank >= values.size())
            rank = values.size() - 1;
        double oracle = static_cast<double>(values[rank]);
        double got = snap.percentile(p);
        // Interpolated percentile error is bounded by one bucket width
        // (<= ~3.2% relative); allow slack for rank-convention skew.
        EXPECT_NEAR(got, oracle, oracle * 0.05 + 2.0)
            << "p" << p;
    }
    EXPECT_EQ(snap.percentile(0), static_cast<double>(snap.min));
    EXPECT_EQ(snap.percentile(100), static_cast<double>(snap.max));
}

TEST(ObsHistogram, MergeEquivalence)
{
    MetricsRegistry reg;
    obs::Histogram ha = reg.histogram("a");
    obs::Histogram hb = reg.histogram("b");
    obs::Histogram hall = reg.histogram("all");
    Xoshiro256 rng(0x3e63e);
    for (int n = 0; n < 5000; ++n) {
        uint64_t v = rng.next() % 1000000;
        (n % 2 ? ha : hb).record(v);
        hall.record(v);
    }
    obs::MetricsSnapshot snap = reg.snapshot();
    HistogramSnapshot merged = snap.histogram("a");
    merged.merge(snap.histogram("b"));
    HistogramSnapshot all = snap.histogram("all");
    EXPECT_EQ(merged.count, all.count);
    EXPECT_EQ(merged.sum, all.sum);
    EXPECT_EQ(merged.min, all.min);
    EXPECT_EQ(merged.max, all.max);
    EXPECT_EQ(merged.buckets, all.buckets);
}

TEST(ObsHistogram, ConcurrentHammer)
{
    MetricsRegistry reg;
    obs::Histogram h = reg.histogram("hammer");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 100000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int n = 0; n < kPerThread; ++n)
                h.record(static_cast<uint64_t>(t * kPerThread + n) %
                         4096);
        });
    for (auto &th : threads)
        th.join();
    HistogramSnapshot snap = reg.snapshot().histogram("hammer");
    EXPECT_EQ(snap.count,
              static_cast<uint64_t>(kThreads) * kPerThread);
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, snap.count);
}

// ---------------------------------------------------------------------
// Registry semantics

TEST(ObsRegistry, CountersAggregateAcrossThreads)
{
    MetricsRegistry reg;
    obs::Counter c = reg.counter("hits");
    // Same name → same metric, from any number of resolutions.
    obs::Counter c2 = reg.counter("hits");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (int n = 0; n < 10000; ++n)
                (n % 2 ? c : c2).inc();
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.snapshot().counter("hits"), 40000u);
}

TEST(ObsRegistry, GaugeSetAndAdd)
{
    MetricsRegistry reg;
    obs::Gauge g = reg.gauge("depth");
    g.set(7);
    g.add(5);
    g.add(-12);
    EXPECT_EQ(reg.snapshot().gauges.at("depth"), 0);
    g.set(-3);
    EXPECT_EQ(reg.snapshot().gauges.at("depth"), -3);
}

TEST(ObsRegistry, DisabledIsSilent)
{
    MetricsRegistry reg;
    obs::Counter c = reg.counter("muted");
    obs::Histogram h = reg.histogram("muted_h");
    reg.setEnabled(false);
    c.inc(100);
    h.record(42);
    EXPECT_EQ(reg.snapshot().counter("muted"), 0u);
    EXPECT_EQ(reg.snapshot().histogram("muted_h").count, 0u);
    reg.setEnabled(true);
    c.inc(1);
    EXPECT_EQ(reg.snapshot().counter("muted"), 1u);
}

TEST(ObsRegistry, DefaultHandlesAreNoOps)
{
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    EXPECT_FALSE(c.valid());
    c.inc();   // must not crash
    g.set(1);
    h.record(1);
}

// ---------------------------------------------------------------------
// Session traces

TEST(ObsTrace, RingKeepsNewestOnOverflow)
{
    SessionTrace trace(/*serial=*/9, /*track=*/0, /*capacity=*/4);
    for (uint16_t i = 0; i < 10; ++i)
        trace.record(TraceEventKind::StateEnter, obs::traceSideServer,
                     "s", i);
    EXPECT_EQ(trace.recorded(), 10u);
    EXPECT_EQ(trace.dropped(), 6u);
    std::vector<TraceEvent> events = trace.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest-first, and the survivors are the LAST four recorded.
    for (size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].code, 6 + i);
}

TEST(ObsTrace, EndpointHandshakeIsTraced)
{
    ssl::BioPair wires;
    crypto::RandomPool pool(toBytes("obs-trace-test"));
    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.randomPool = &pool;
    ssl::ClientConfig ccfg;
    ccfg.randomPool = &pool;

    ssl::SslServer server(scfg, wires.serverEnd());
    ssl::SslClient client(ccfg, wires.clientEnd());

    MetricsRegistry reg;
    SessionTrace trace(1, 0, 256);
    ssl::EndpointObsBinding sb;
    sb.registry = &reg;
    sb.trace = &trace;
    sb.side = obs::traceSideServer;
    server.bindObservability(sb);
    ssl::EndpointObsBinding cb;
    cb.registry = &reg;
    cb.trace = &trace;
    cb.side = obs::traceSideClient;
    client.bindObservability(cb);

    ssl::runLockstep(client, server);

    size_t flights_sent = 0, flights_recv = 0, states = 0, done = 0;
    bool saw_client_hello = false;
    for (const TraceEvent &e : trace.events()) {
        switch (e.kind) {
          case TraceEventKind::FlightSend:
            ++flights_sent;
            break;
          case TraceEventKind::FlightRecv:
            ++flights_recv;
            if (e.label && std::string(e.label) == "ClientHello")
                saw_client_hello = true;
            break;
          case TraceEventKind::StateEnter:
            ++states;
            break;
          case TraceEventKind::HandshakeDone:
            ++done;
            break;
          default:
            break;
        }
        EXPECT_LE(e.side, obs::traceSideClient);
    }
    // A full handshake has at least 4 flights each way and both sides
    // signal completion.
    EXPECT_GE(flights_sent, 4u);
    EXPECT_GE(flights_recv, 4u);
    EXPECT_GE(states, 8u);
    EXPECT_EQ(done, 2u);
    EXPECT_TRUE(saw_client_hello);
    EXPECT_STREQ(trace.outcome(), "open");
}

// ---------------------------------------------------------------------
// Export

TEST(ObsExport, JsonEscape)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(obs::jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(ObsExport, ChromeTraceDocumentShape)
{
    obs::ChromeTraceCollector collector;
    SessionTrace trace(0x42, /*track=*/3, 64);
    trace.record(TraceEventKind::ConnOpen, obs::traceSideEngine, "open");
    trace.record(TraceEventKind::StateEnter, obs::traceSideServer,
                 "GetClientHello", 1);
    trace.record(TraceEventKind::StateEnter, obs::traceSideServer,
                 "SendServerHello", 2);
    trace.record(TraceEventKind::AlertSend, obs::traceSideServer,
                 "handshake_failure", 40);
    trace.noteOutcome("fatal");
    collector.dump(trace);
    EXPECT_EQ(collector.traceCount(), 1u);

    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    collector.write(mem);
    std::fclose(mem);
    std::string doc(buf, len);
    std::free(buf);

    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos); // state span
    EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos); // session open
    EXPECT_NE(doc.find("\"ph\":\"e\""), std::string::npos); // session end
    EXPECT_NE(doc.find("handshake_failure"), std::string::npos);
    EXPECT_NE(doc.find("\"fatal\""), std::string::npos);
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc[doc.size() - 2], '}'); // trailing newline after root
}

TEST(ObsExport, PrometheusTextExposition)
{
    MetricsRegistry reg;
    reg.counter("serve.park_events").inc(3);
    reg.gauge("pool.queue-depth").set(7);
    obs::Histogram h = reg.histogram("serve.handshake_cycles");
    for (uint64_t i = 1; i <= 100; ++i)
        h.record(i);

    const std::string text = obs::prometheusText(reg.snapshot());
    const auto npos = std::string::npos;

    // Counters: dots sanitized to underscores, _total suffix, typed.
    EXPECT_NE(text.find("# TYPE serve_park_events_total counter\n"),
              npos);
    EXPECT_NE(text.find("serve_park_events_total 3\n"), npos);
    // Gauges: dashes sanitized too, value verbatim.
    EXPECT_NE(text.find("# TYPE pool_queue_depth gauge\n"), npos);
    EXPECT_NE(text.find("pool_queue_depth 7\n"), npos);
    // Histograms render as summaries: three quantiles + sum + count.
    EXPECT_NE(text.find("# TYPE serve_handshake_cycles summary\n"),
              npos);
    EXPECT_NE(text.find("serve_handshake_cycles{quantile=\"0.5\"} "),
              npos);
    EXPECT_NE(text.find("serve_handshake_cycles{quantile=\"0.9\"} "),
              npos);
    EXPECT_NE(text.find("serve_handshake_cycles{quantile=\"0.99\"} "),
              npos);
    EXPECT_NE(text.find("serve_handshake_cycles_sum 5050\n"), npos);
    EXPECT_NE(text.find("serve_handshake_cycles_count 100\n"), npos);
    // Every original (dotted) name must be gone.
    EXPECT_EQ(text.find("serve.park_events"), npos);
    EXPECT_EQ(text.find("pool.queue-depth"), npos);

    // writePrometheusText streams the identical document.
    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    obs::writePrometheusText(mem, reg.snapshot());
    std::fclose(mem);
    EXPECT_EQ(std::string(buf, len), text);
    std::free(buf);
}

// ---------------------------------------------------------------------
// Flight recorder under chaos

/** Captures dumped traces verbatim for inspection. */
struct CaptureSink final : obs::TraceSink
{
    std::mutex m;
    std::vector<std::vector<TraceEvent>> dumps;
    std::vector<std::string> outcomes;

    void
    dump(const SessionTrace &trace) override
    {
        std::lock_guard<std::mutex> lock(m);
        dumps.push_back(trace.events());
        outcomes.push_back(trace.outcome());
    }
};

TEST(ChaosTrace, FlightRecorderNamesFaultAndAlert)
{
    const uint64_t seed = chaosSeed();
    ssl::FaultPlan plan;
    plan.corruptRate = 0.5; // every other record flipped: certain death
    plan.seed = seed;

    CaptureSink sink;
    MetricsRegistry reg;
    serve::ServeConfig cfg;
    cfg.workers = 1;
    cfg.connectionsPerWorker = 16;
    cfg.concurrentPerWorker = 4;
    cfg.certificate = &test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    cfg.seed = seed;
    cfg.faultPlan = &plan;
    cfg.metrics = &reg;
    cfg.traceSampleEvery = 1;
    cfg.traceSink = &sink;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    // With a 50% corrupt rate essentially every session dies; each
    // death must have dumped its flight recorder.
    ASSERT_GT(stats.failedHandshakes() + stats.timedOutSessions(), 0u)
        << "seed " << seed;
    ASSERT_FALSE(sink.dumps.empty());

    // At least one dump names both the injected fault (with the record
    // index it hit) and the alert/teardown it caused — the post-mortem
    // the flight recorder exists for.
    bool found = false;
    for (const auto &events : sink.dumps) {
        bool fault = false, alert = false;
        for (const TraceEvent &e : events) {
            if (e.kind == TraceEventKind::FaultInjected &&
                e.label != nullptr)
                fault = true;
            if ((e.kind == TraceEventKind::AlertSend ||
                 e.kind == TraceEventKind::AlertRecv ||
                 e.kind == TraceEventKind::Teardown) &&
                e.label != nullptr)
                alert = true;
        }
        if (fault && alert) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found) << "no dump pairs a fault with its alert (seed "
                       << seed << ")";
    // And the per-alert-code counters saw the same storm.
    uint64_t alert_counts = 0;
    for (const auto &[name, value] : stats.metrics.counters)
        if (name.rfind("alert.", 0) == 0)
            alert_counts += value;
    EXPECT_GT(alert_counts, 0u);
}

// ---------------------------------------------------------------------
// Engine metrics snapshot

TEST(ObsServe, MetricsSnapshotFromEngine)
{
    MetricsRegistry reg;
    serve::ServeConfig cfg;
    cfg.workers = 2;
    cfg.connectionsPerWorker = 8;
    cfg.concurrentPerWorker = 4;
    cfg.resumeFraction = 0.5;
    cfg.bulkBytes = 4096;
    cfg.recordBytes = 2048;
    cfg.certificate = &test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    cfg.metrics = &reg;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    const obs::MetricsSnapshot &snap = stats.metrics;
    EXPECT_EQ(snap.counter("serve.full_handshakes") +
                  snap.counter("serve.resumed_handshakes"),
              16u);
    EXPECT_EQ(snap.counter("serve.full_handshakes"),
              stats.fullHandshakes());
    EXPECT_EQ(snap.counter("serve.resumed_handshakes"),
              stats.resumedHandshakes());
    EXPECT_EQ(snap.counter("serve.bulk_bytes"), stats.bulkBytesMoved());

    // Every completed handshake recorded one latency sample.
    HistogramSnapshot hs = snap.histogram("serve.handshake_cycles");
    EXPECT_EQ(hs.count, 16u);
    EXPECT_GT(hs.percentile(50), 0.0);
    EXPECT_LE(hs.percentile(50), hs.percentile(99));

    // Record layer and session cache reported through the same registry.
    EXPECT_GT(snap.counter("record.records_out"), 0u);
    EXPECT_GT(snap.counter("record.bytes_out"), 0u);
    EXPECT_GT(snap.counter("cache.stores"), 0u);

    // Per-worker perf contexts bridged in (RSA decrypt fires on every
    // full handshake).
    uint64_t perf_calls = 0;
    for (const auto &[name, value] : snap.counters)
        if (name.rfind("perf.", 0) == 0 &&
            name.find(".calls") != std::string::npos)
            perf_calls += value;
    EXPECT_GT(perf_calls, 0u);
}

TEST(ObsServe, CryptoPoolMetricsAndTraces)
{
    CaptureSink sink;
    MetricsRegistry reg;
    serve::CryptoPool pool(2);
    {
        serve::ServeConfig cfg;
        cfg.workers = 2;
        cfg.connectionsPerWorker = 4;
        cfg.concurrentPerWorker = 4;
        cfg.certificate = &test::testServerCert();
        cfg.privateKey = test::testKey1024().priv;
        cfg.cryptoPool = &pool;
        cfg.metrics = &reg;
        cfg.traceSampleEvery = 1;
        cfg.traceSink = &sink;
        serve::ServeEngine engine(std::move(cfg));
        engine.run();
    }
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("cryptopool.completed"),
              pool.completedJobs());
    EXPECT_GT(snap.histogram("cryptopool.service_cycles").count, 0u);
    EXPECT_GT(snap.histogram("cryptopool.queue_wait_cycles").count, 0u);
}

// ---------------------------------------------------------------------
// PerfContext bridge

TEST(PerfBridge, PublishToRegistry)
{
    perf::PerfContext ctx;
    ctx.add("rsa_private", 1000, 800);
    ctx.add("rsa_private", 500, 400);
    ctx.add("sha1", 10, 10);

    MetricsRegistry reg;
    ctx.publishTo(reg);
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("perf.rsa_private.inclusive_cycles"), 1500u);
    EXPECT_EQ(snap.counter("perf.rsa_private.exclusive_cycles"), 1200u);
    EXPECT_EQ(snap.counter("perf.rsa_private.calls"), 2u);
    EXPECT_EQ(snap.counter("perf.sha1.calls"), 1u);

    // Publishing again accumulates (per-worker contexts add up).
    ctx.publishTo(reg);
    EXPECT_EQ(reg.snapshot().counter("perf.rsa_private.calls"), 4u);
}

// ---------------------------------------------------------------------
// Log sink

TEST(LogSink, CustomSinkSeesEverything)
{
    std::vector<std::pair<LogLevel, std::string>> seen;
    LogSink prev = setLogSink([&](LogLevel level, const std::string &m) {
        seen.emplace_back(level, m);
    });
    warn("telemetry-test-warning");
    inform("telemetry-test-info");
    setLogSink(std::move(prev));
    // After restore the custom sink is gone.
    warn("not-captured");

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].first, LogLevel::Warn);
    EXPECT_NE(seen[0].second.find("telemetry-test-warning"),
              std::string::npos);
    EXPECT_EQ(seen[1].first, LogLevel::Inform);
}

// ---------------------------------------------------------------------
// Bench JSON writer escaping

TEST(JsonWriter, EscapesControlAndQuote)
{
    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    {
        bench::JsonWriter j(mem);
        j.beginObject();
        j.field("k", "a\"b\\c\nd\te\x01"
                     "f");
        j.endObject();
    }
    std::fclose(mem);
    std::string doc(buf, len);
    std::free(buf);

    EXPECT_NE(doc.find("a\\\"b\\\\c\\nd\\te\\u0001f"),
              std::string::npos)
        << doc;
    // No raw control bytes survive.
    for (char c : doc)
        EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n');
}

} // anonymous namespace

/**
 * @file
 * SSLv3 key derivation (RFC 6101 section 6.1/6.2.2).
 *
 * Both derivations the paper measures in handshake steps 5 and 6 live
 * here: the 48-byte master secret from the pre-master
 * (gen_master_secret) and the key block that becomes MAC secrets,
 * cipher keys and IVs (gen_key_block). Both are the nested
 * MD5(secret || SHA1('A'.. label || secret || randoms)) construction.
 */

#ifndef SSLA_SSL_KDF_HH
#define SSLA_SSL_KDF_HH

#include "ssl/ciphersuite.hh"
#include "ssl/record.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/**
 * The SSLv3 expansion: out = MD5(secret||SHA1("A"||secret||r1||r2)) ||
 * MD5(secret||SHA1("BB"||...)) || ... truncated to @p out_len.
 */
Bytes ssl3Expand(const Bytes &secret, const Bytes &rand1,
                 const Bytes &rand2, size_t out_len);

/**
 * Derive the 48-byte master secret (probed as gen_master_secret).
 *
 * @param premaster the 48-byte pre-master from the client key exchange
 */
Bytes ssl3MasterSecret(const Bytes &premaster, const Bytes &client_random,
                       const Bytes &server_random);

/** Key material split out of the key block, per direction. */
struct KeyBlock
{
    Bytes clientMacSecret;
    Bytes serverMacSecret;
    Bytes clientKey;
    Bytes serverKey;
    Bytes clientIv;
    Bytes serverIv;
};

/** Derive and split the key block (probed as gen_key_block). */
KeyBlock ssl3KeyBlock(const Bytes &master, const Bytes &client_random,
                      const Bytes &server_random, const CipherSuite &suite);

// ---- TLS 1.0 (RFC 2246) ----------------------------------------------
// The paper's library also spoke TLS v1; the TLS derivations replace
// SSLv3's ad-hoc MD5/SHA nesting with the HMAC-based PRF.

/**
 * The TLS 1.0 PRF: P_MD5(S1, label||seed) XOR P_SHA1(S2, label||seed)
 * with the secret split into (overlapping when odd) halves.
 */
Bytes tls1Prf(const Bytes &secret, std::string_view label,
              const Bytes &seed, size_t out_len);

/** TLS master secret: PRF(pre, "master secret", cr||sr, 48). */
Bytes tls1MasterSecret(const Bytes &premaster, const Bytes &client_random,
                       const Bytes &server_random);

/** TLS key block: PRF(master, "key expansion", sr||cr, len), split. */
KeyBlock tls1KeyBlock(const Bytes &master, const Bytes &client_random,
                      const Bytes &server_random,
                      const CipherSuite &suite);

/** Version-dispatching master-secret derivation. */
Bytes deriveMasterSecret(uint16_t version, const Bytes &premaster,
                         const Bytes &client_random,
                         const Bytes &server_random);

/** Version-dispatching key-block derivation. */
KeyBlock deriveKeyBlock(uint16_t version, const Bytes &master,
                        const Bytes &client_random,
                        const Bytes &server_random,
                        const CipherSuite &suite);

} // namespace ssla::ssl

#endif // SSLA_SSL_KDF_HH

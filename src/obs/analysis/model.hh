/**
 * @file
 * Typed in-memory event graph the analysis passes run over.
 *
 * Both trace formats the obs layer emits normalize into the same
 * shape: a Corpus of SessionRecords (engine sessions on worker tracks,
 * crypto-pool/supervisor threads on control tracks >= cryptoTrackBase),
 * each an ordered list of AnalysisEvents — the parsed TraceEvent
 * fields plus the session's terminal outcome. Passes never look at
 * JSON; they walk this graph.
 *
 *  - JSONL (JsonlTraceSink): one object per event plus a summary line
 *    per trace; timestamps are raw cycle counts.
 *  - Chrome trace_event (ChromeTraceCollector): "i" instants, "X"
 *    spans (StateEnter residency, JobStart..JobEnd service) and the
 *    session's async "b"/"e" pair; timestamps are microseconds. Span
 *    events are re-split into their begin/end instants so the graph
 *    is format-independent.
 *
 * Ingest is strict: a malformed line or event fails with the line
 * number and reason (IngestError) rather than skipping silently — a
 * truncated trace should be debugged, not averaged over.
 */

#ifndef SSLA_OBS_ANALYSIS_MODEL_HH
#define SSLA_OBS_ANALYSIS_MODEL_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/analysis/json.hh"

namespace ssla::obs::analysis
{

/** Track index at which crypto-pool threads start (obs contract). */
constexpr uint32_t analysisCryptoTrackBase = 1000;

/** Malformed trace input; message names the line and the defect. */
class IngestError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One normalized trace event. */
struct AnalysisEvent
{
    double t = 0.0;    ///< timestamp in Corpus::timeUnit units
    uint64_t tick = 0; ///< engine virtual tick (multiplexer sweep)
    std::string kind;  ///< TraceEventKind name ("Park", "JobStart"...)
    std::string label; ///< event label ("rsa_decrypt", "corrupt"...)
    std::string side;  ///< recording side ("server", "engine"...)
    uint16_t code = 0; ///< alert code / JobClass stamp / error flag
    uint64_t arg = 0;  ///< size / queue-wait / service cycles...
    double argT = 0.0; ///< arg rescaled to Corpus::timeUnit (when arg
                       ///< is a duration; equals arg for JSONL)
    std::string text;  ///< dynamic payload (log capture)
};

/** One session's (or control thread's) complete event history. */
struct SessionRecord
{
    uint64_t serial = 0;
    uint32_t track = 0;
    std::string outcome = "open";
    uint64_t dropped = 0;
    std::vector<AnalysisEvent> events; ///< time-ordered

    bool
    isCryptoTrack() const
    {
        return track >= analysisCryptoTrackBase;
    }

    double
    startT() const
    {
        return events.empty() ? 0.0 : events.front().t;
    }

    double
    endT() const
    {
        return events.empty() ? 0.0 : events.back().t;
    }

    double duration() const { return endT() - startT(); }
};

/** Everything one analysis run sees. */
struct Corpus
{
    /** Sessions sorted by (track, serial); crypto tracks included. */
    std::vector<SessionRecord> sessions;
    /** "cycles" (JSONL) or "us" (Chrome trace). */
    std::string timeUnit = "cycles";
    /** Source format: "jsonl" or "chrome". */
    std::string format;
    /** Optional metrics snapshot (Prometheus text), name -> value. */
    std::map<std::string, double> metrics;
    /** Quantile series from the snapshot: name{quantile} -> value. */
    std::map<std::string, double> metricQuantiles;

    size_t
    totalEvents() const
    {
        size_t n = 0;
        for (const auto &s : sessions)
            n += s.events.size();
        return n;
    }

    /** Engine sessions only (excludes crypto/supervisor tracks). */
    size_t
    sessionCount() const
    {
        size_t n = 0;
        for (const auto &s : sessions)
            if (!s.isCryptoTrack())
                ++n;
        return n;
    }
};

/**
 * Ingest a JSONL trace stream (JsonlTraceSink output).
 * @throws IngestError naming the offending line on malformed input
 */
Corpus ingestJsonl(std::string_view text);

/**
 * Ingest a Chrome trace_event JSON document (ChromeTraceCollector
 * output). Events are grouped per session by the exporter's
 * args.serial stamp; events predating that stamp fall back to one
 * synthetic session per export track.
 * @throws IngestError on malformed input
 */
Corpus ingestChrome(const Json &doc);

/**
 * Load a trace file, sniffing the format: a document whose root object
 * has a "traceEvents" member is Chrome JSON, anything else is treated
 * as JSONL.
 * @throws IngestError on unreadable or malformed input
 */
Corpus ingestTraceFile(const std::string &path);

/**
 * Parse a Prometheus text-exposition snapshot (writePrometheusText
 * output) into @p corpus.metrics / metricQuantiles. Unknown lines
 * fail; the format is ours end to end.
 */
void ingestPrometheus(std::string_view text, Corpus &corpus);

/** Read a whole file; throws IngestError when unreadable. */
std::string readFileOrThrow(const std::string &path);

} // namespace ssla::obs::analysis

#endif // SSLA_OBS_ANALYSIS_MODEL_HH

/**
 * @file
 * Serving-layer tests: CryptoPool correctness, the server's parking
 * protocol on asynchronous RSA, transcript identity between the
 * synchronous and offloaded key-exchange paths, and the ServeEngine
 * end to end (single- and multi-worker, resumption across workers).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "serve/engine.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "testkeys.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;

// ---------------------------------------------------------------------
// CryptoPool

TEST(CryptoPool, DecryptMatchesSynchronousPath)
{
    const auto &kp = test::testKey1024();
    crypto::RandomPool pool{toBytes("serve-pool-tests")};
    Bytes plain = toBytes("pre-master material");
    Bytes cipher = crypto::rsaPublicEncrypt(kp.pub, plain, pool);

    serve::CryptoPool cp(2);
    crypto::RsaJob job = cp.submitDecrypt(*kp.priv, cipher);
    EXPECT_EQ(job.wait(), plain);
    EXPECT_EQ(cp.completedJobs(), 1u);
}

TEST(CryptoPool, SignMatchesSynchronousPath)
{
    const auto &kp = test::testKey1024();
    Bytes digest = toBytes("0123456789abcdef0123");

    serve::CryptoPool cp(1);
    crypto::RsaJob job = cp.submitSign(*kp.priv, digest);
    Bytes sig = job.wait();
    EXPECT_EQ(sig, crypto::rsaSign(*kp.priv, digest));
    EXPECT_TRUE(crypto::rsaVerify(kp.pub, digest, sig));
}

TEST(CryptoPool, ErrorsPropagateThroughWait)
{
    const auto &kp = test::testKey1024();
    // Garbage ciphertext: the PKCS#1 unpad must fail on the pool
    // thread and rethrow from wait() on this one.
    Bytes garbage(128, 0x5a);
    serve::CryptoPool cp(1);
    crypto::RsaJob job = cp.submitDecrypt(*kp.priv, garbage);
    EXPECT_THROW(job.wait(), std::exception);
}

TEST(CryptoPool, ManyConcurrentJobsAcrossThreads)
{
    const auto &kp = test::testKey512();
    crypto::RandomPool pool{toBytes("many-jobs")};
    constexpr int kJobs = 32;

    std::vector<Bytes> plains, ciphers;
    for (int i = 0; i < kJobs; ++i) {
        plains.push_back(pool.bytes(20));
        ciphers.push_back(
            crypto::rsaPublicEncrypt(kp.pub, plains.back(), pool));
    }

    serve::CryptoPool cp(4);
    std::vector<crypto::RsaJob> jobs;
    for (int i = 0; i < kJobs; ++i)
        jobs.push_back(cp.submitDecrypt(*kp.priv, ciphers[i]));
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(jobs[i].wait(), plains[i]) << "job " << i;
    EXPECT_EQ(cp.completedJobs(), static_cast<uint64_t>(kJobs));
}

TEST(CryptoPool, DestructorCompletesPendingJobs)
{
    std::atomic<int> ran{0};
    std::vector<crypto::RsaJob> jobs;
    {
        serve::CryptoPool cp(1);
        for (int i = 0; i < 8; ++i)
            jobs.push_back(cp.submitRaw([&ran] {
                ++ran;
                return toBytes("done");
            }));
    }
    // The pool has been destroyed; every job must still have resolved.
    EXPECT_EQ(ran.load(), 8);
    for (auto &j : jobs) {
        ASSERT_TRUE(j.ready());
        EXPECT_EQ(j.wait(), toBytes("done"));
    }
}

// ---------------------------------------------------------------------
// Parking protocol

/**
 * Provider whose submitRsaDecrypt hands back a job the test resolves
 * by hand, so the AwaitPreMaster state is observable deterministically
 * (a real pool may finish before the worker's next poll).
 */
class StallProvider : public crypto::Provider
{
  public:
    const char *name() const override { return "stall"; }

    std::unique_ptr<crypto::Cipher>
    createCipher(crypto::CipherAlg alg, const Bytes &key,
                 const Bytes &iv, bool encrypt) override
    {
        return inner_.createCipher(alg, key, iv, encrypt);
    }
    std::unique_ptr<crypto::Digest>
    createDigest(crypto::DigestAlg alg) override
    {
        return inner_.createDigest(alg);
    }
    std::unique_ptr<crypto::Hmac>
    createHmac(crypto::DigestAlg alg, const Bytes &key) override
    {
        return inner_.createHmac(alg, key);
    }
    size_t
    recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
              uint8_t type, ConstSpan data, uint8_t *mac_out) override
    {
        return inner_.recordMac(spec, seq, type, data, mac_out);
    }
    Bytes
    rsaDecrypt(const crypto::RsaPrivateKey &key,
               const Bytes &cipher) override
    {
        return inner_.rsaDecrypt(key, cipher);
    }
    Bytes
    rsaSign(const crypto::RsaPrivateKey &key,
            const Bytes &digest_data) override
    {
        return inner_.rsaSign(key, digest_data);
    }

    crypto::RsaJob
    submitRsaDecrypt(const crypto::RsaPrivateKey &key,
                     Bytes cipher) override
    {
        pendingKey_ = &key;
        pendingInput_ = std::move(cipher);
        pendingIsSign_ = false;
        pendingState_ = std::make_shared<crypto::RsaJob::State>();
        return crypto::RsaJob(pendingState_);
    }

    crypto::RsaJob
    submitRsaSign(const crypto::RsaPrivateKey &key,
                  Bytes digest_data) override
    {
        pendingKey_ = &key;
        pendingInput_ = std::move(digest_data);
        pendingIsSign_ = true;
        pendingState_ = std::make_shared<crypto::RsaJob::State>();
        return crypto::RsaJob(pendingState_);
    }

    bool pending() const { return pendingState_ != nullptr; }

    /** Complete the held job (correctly, via the scalar path). */
    void
    resolve()
    {
        ASSERT_TRUE(pendingState_);
        Bytes result;
        std::exception_ptr err;
        try {
            result = pendingIsSign_
                         ? crypto::rsaSign(*pendingKey_, pendingInput_)
                         : crypto::rsaPrivateDecrypt(*pendingKey_,
                                                     pendingInput_);
        } catch (...) {
            err = std::current_exception();
        }
        pendingState_->finish(std::move(result), std::move(err));
        pendingState_.reset();
    }

    /** Complete the held job with a failure. */
    void
    resolveWithError()
    {
        ASSERT_TRUE(pendingState_);
        pendingState_->finish(
            Bytes(), std::make_exception_ptr(
                         std::runtime_error("simulated corrupt input")));
        pendingState_.reset();
    }

  private:
    crypto::Provider &inner_ = crypto::scalarProvider();
    const crypto::RsaPrivateKey *pendingKey_ = nullptr;
    Bytes pendingInput_;
    bool pendingIsSign_ = false;
    std::shared_ptr<crypto::RsaJob::State> pendingState_;
};

TEST(Parking, ServerParksAtClientKeyExchangeAndResumes)
{
    StallProvider stall;
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.provider = &stall;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, wires.clientEnd());

    // Drive both sides until neither can move. The server must be
    // parked on the held decrypt, not deadlocked on peer input.
    while (client.advance() || server.advance())
        ;
    ASSERT_FALSE(server.handshakeDone());
    EXPECT_TRUE(server.waitingOnCrypto());
    EXPECT_EQ(server.cryptoWait(), ssl::CryptoWait::PreMasterDecrypt);
    EXPECT_TRUE(stall.pending());

    // Parked means advance() is a cheap no-op, not an error.
    EXPECT_FALSE(server.advance());
    EXPECT_TRUE(server.waitingOnCrypto());

    stall.resolve();
    EXPECT_FALSE(server.waitingOnCrypto());
    while (client.advance() || server.advance())
        ;
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_TRUE(server.handshakeDone());

    // The established channel works end to end.
    client.writeApplicationData(toBytes("after parking"));
    while (client.advance() || server.advance())
        ;
    auto got = server.readApplicationData();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, toBytes("after parking"));
}

TEST(Parking, FailedDecryptAlertsAfterUnpark)
{
    StallProvider stall;
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.provider = &stall;
    ssl::SslServer server(std::move(scfg), wires.serverEnd());
    ssl::SslClient client(ssl::ClientConfig{}, wires.clientEnd());

    while (client.advance() || server.advance())
        ;
    ASSERT_TRUE(server.waitingOnCrypto());

    // Complete the job with an error: the unparked server must raise
    // the same fatal handshake_failure alert the synchronous decrypt
    // path produces.
    stall.resolveWithError();
    EXPECT_FALSE(server.waitingOnCrypto());
    EXPECT_THROW(server.advance(), ssl::SslError);
}

// ---------------------------------------------------------------------
// Sign parking (DHE suites park at ServerKeyExchange, not pre-master)

/** DHE-suite server/client pair over @p stall for the tests below. */
struct DheStallRig
{
    ssl::BioPair wires;
    ssl::SslServer server;
    ssl::SslClient client;

    explicit DheStallRig(StallProvider &stall)
        : server(
              [&] {
                  ssl::ServerConfig scfg;
                  scfg.certificate = test::testServerCert();
                  scfg.privateKey = test::testKey1024().priv;
                  scfg.suites = {
                      ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA};
                  scfg.provider = &stall;
                  return scfg;
              }(),
              wires.serverEnd()),
          client(
              [] {
                  ssl::ClientConfig ccfg;
                  ccfg.suites = {
                      ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA};
                  return ccfg;
              }(),
              wires.clientEnd())
    {
    }
};

TEST(SignParking, ServerParksAtServerKeyExchangeAndResumes)
{
    StallProvider stall;
    DheStallRig rig(stall);

    // The server must park on the held SKX signature — a distinct
    // reason from the RSA pre-master decrypt park.
    while (rig.client.advance() || rig.server.advance())
        ;
    ASSERT_FALSE(rig.server.handshakeDone());
    EXPECT_TRUE(rig.server.waitingOnCrypto());
    EXPECT_EQ(rig.server.cryptoWait(), ssl::CryptoWait::ServerKxSign);
    EXPECT_TRUE(stall.pending());

    // Parked means advance() is a cheap no-op, not an error.
    EXPECT_FALSE(rig.server.advance());
    EXPECT_EQ(rig.server.cryptoWait(), ssl::CryptoWait::ServerKxSign);

    stall.resolve();
    EXPECT_FALSE(rig.server.waitingOnCrypto());
    while (rig.client.advance() || rig.server.advance())
        ;
    EXPECT_TRUE(rig.client.handshakeDone());
    EXPECT_TRUE(rig.server.handshakeDone());
    // A DHE client key exchange needs no RSA private operation, so the
    // sign park must have been the only one.
    EXPECT_FALSE(stall.pending());

    rig.client.writeApplicationData(toBytes("signed and sealed"));
    while (rig.client.advance() || rig.server.advance())
        ;
    auto got = rig.server.readApplicationData();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, toBytes("signed and sealed"));
}

TEST(SignParking, FailedSignAlertsAfterUnpark)
{
    StallProvider stall;
    DheStallRig rig(stall);

    while (rig.client.advance() || rig.server.advance())
        ;
    ASSERT_EQ(rig.server.cryptoWait(), ssl::CryptoWait::ServerKxSign);

    // Complete the sign with an error: the unparked server must raise
    // a fatal internal_error alert, same contract as a failed decrypt.
    stall.resolveWithError();
    EXPECT_FALSE(rig.server.waitingOnCrypto());
    try {
        rig.server.advance();
        FAIL() << "failed sign did not raise";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(), ssl::AlertDescription::InternalError);
    }
}

// ---------------------------------------------------------------------
// Transcript identity

/** Relay bytes between two BioPairs, recording both directions. */
struct RecordingRelay
{
    ssl::BioPair clientSide; ///< client endpoint lives here
    ssl::BioPair serverSide; ///< server endpoint lives here
    Bytes clientToServer;
    Bytes serverToClient;

    /** Move all pending bytes across, logging them; true if any. */
    bool
    pump()
    {
        bool moved = false;
        ssl::BioEndpoint fromClient = clientSide.serverEnd();
        ssl::BioEndpoint fromServer = serverSide.clientEnd();
        Bytes buf(4096);
        while (size_t n = fromClient.read(buf.data(), buf.size())) {
            clientToServer.insert(clientToServer.end(), buf.begin(),
                                  buf.begin() + n);
            serverSide.clientEnd().write(buf.data(), n);
            moved = true;
        }
        while (size_t n = fromServer.read(buf.data(), buf.size())) {
            serverToClient.insert(serverToClient.end(), buf.begin(),
                                  buf.begin() + n);
            clientSide.serverEnd().write(buf.data(), n);
            moved = true;
        }
        return moved;
    }
};

/**
 * Run one full handshake + one application record with deterministic
 * randomness, through @p provider, and return both wire transcripts.
 */
std::pair<Bytes, Bytes>
captureTranscript(crypto::Provider *provider,
                  ssl::CipherSuiteId suite =
                      ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA)
{
    RecordingRelay relay;
    crypto::RandomPool clientPool{toBytes("transcript-client")};
    crypto::RandomPool serverPool{toBytes("transcript-server")};

    ssl::ServerConfig scfg;
    scfg.certificate = test::testServerCert();
    scfg.privateKey = test::testKey1024().priv;
    scfg.suites = {suite};
    scfg.randomPool = &serverPool;
    scfg.provider = provider;
    ssl::SslServer server(std::move(scfg),
                          relay.serverSide.serverEnd());

    ssl::ClientConfig ccfg;
    ccfg.suites = {suite};
    ccfg.randomPool = &clientPool;
    ssl::SslClient client(std::move(ccfg),
                          relay.clientSide.clientEnd());

    bool sent = false;
    for (;;) {
        bool progress = client.advance();
        progress |= server.advance();
        progress |= relay.pump();
        if (client.handshakeDone() && server.handshakeDone() && !sent) {
            client.writeApplicationData(toBytes("identical bytes"));
            sent = true;
            progress = true;
        }
        if (sent && server.readApplicationData())
            break;
        if (!progress) {
            if (server.waitingOnCrypto()) {
                std::this_thread::yield();
                continue;
            }
            ADD_FAILURE() << "relay deadlocked";
            break;
        }
    }
    return {relay.clientToServer, relay.serverToClient};
}

TEST(TranscriptIdentity, OffloadedHandshakeIsByteIdenticalToSync)
{
    // Same seeds, same config — one run decrypts the pre-master
    // synchronously, the other through the CryptoPool. RSA blinding
    // in the pool's key replica cancels by construction, so every
    // wire byte in both directions must match.
    auto sync_transcript = captureTranscript(nullptr);

    serve::CryptoPool pool(2);
    serve::PooledProvider pooled(pool);
    auto offload_transcript = captureTranscript(&pooled);

    EXPECT_FALSE(sync_transcript.first.empty());
    EXPECT_FALSE(sync_transcript.second.empty());
    EXPECT_EQ(sync_transcript.first, offload_transcript.first);
    EXPECT_EQ(sync_transcript.second, offload_transcript.second);
}

TEST(TranscriptIdentity, OffloadedDheHandshakeIsByteIdenticalToSync)
{
    // Same identity check for DHE_RSA, where the asynchronous path is
    // the ServerKeyExchange *signature* rather than the pre-master
    // decrypt. RSA signing is deterministic, so the offloaded SKX must
    // match the synchronous one bit for bit.
    constexpr auto suite = ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA;
    auto sync_transcript = captureTranscript(nullptr, suite);

    serve::CryptoPool pool(2);
    serve::PooledProvider pooled(pool);
    auto offload_transcript = captureTranscript(&pooled, suite);

    EXPECT_FALSE(sync_transcript.first.empty());
    EXPECT_FALSE(sync_transcript.second.empty());
    EXPECT_EQ(sync_transcript.first, offload_transcript.first);
    EXPECT_EQ(sync_transcript.second, offload_transcript.second);
}

// ---------------------------------------------------------------------
// ServeEngine

serve::ServeConfig
engineConfig()
{
    serve::ServeConfig cfg;
    cfg.certificate = &test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    cfg.connectionsPerWorker = 12;
    cfg.concurrentPerWorker = 4;
    cfg.bulkBytes = 4096;
    cfg.recordBytes = 1024;
    return cfg;
}

TEST(ServeEngine, SingleWorkerCompletesAllConnections)
{
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 1;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 12u);
    EXPECT_EQ(stats.bulkBytesMoved(), 12u * 4096u);
    EXPECT_EQ(stats.perWorker.size(), 1u);
}

TEST(ServeEngine, FourWorkersCompleteAllConnections)
{
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 4;
    cfg.connectionsPerWorker = 6;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 24u);
    EXPECT_EQ(stats.bulkBytesMoved(), 24u * 4096u);
    EXPECT_EQ(stats.perWorker.size(), 4u);
    for (const auto &w : stats.perWorker)
        EXPECT_EQ(w.fullHandshakes + w.resumedHandshakes, 6u);
}

TEST(ServeEngine, SessionsResumeAcrossWorkers)
{
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 16;
    cfg.concurrentPerWorker = 2;
    cfg.resumeFraction = 0.8;
    cfg.bulkBytes = 0;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 32u);
    // With 80% of connections offering a session and both workers
    // feeding one sharded store, a healthy number must resume.
    EXPECT_GT(stats.resumedHandshakes(), 0u);
}

TEST(ServeEngine, OffloadRunParksSessions)
{
    serve::CryptoPool pool(1);
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 8;
    cfg.cryptoPool = &pool;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 16u);
    // An RSA-1024 decrypt takes far longer than a sweep iteration, so
    // offloaded handshakes must actually park (this is the mechanism
    // the engine exists to exercise). RSA key transport parks only at
    // the pre-master decrypt, never at signing.
    EXPECT_GT(stats.parkEvents(), 0u);
    EXPECT_EQ(stats.parkEventsDecrypt(), stats.parkEvents());
    EXPECT_EQ(stats.parkEventsSign(), 0u);
    EXPECT_GT(pool.completedJobs(), 0u);
}

TEST(ServeEngine, DheOffloadRunParksAtSigning)
{
    serve::CryptoPool pool(1);
    serve::ServeConfig cfg = engineConfig();
    cfg.suite = ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA;
    cfg.workers = 2;
    cfg.connectionsPerWorker = 6;
    cfg.cryptoPool = &pool;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 12u);
    // Every full DHE handshake submits exactly one sign job to the
    // pool, and the client key exchange involves no RSA private
    // operation, so any park the workers observe must be a sign park.
    // (Whether a worker *sees* the park is a race against the crypto
    // thread — the pool can finish the signature before the next
    // sweep — so the observed count is not asserted; deterministic
    // park/resume coverage lives in SignParking.* via StallProvider.)
    EXPECT_EQ(pool.completedJobs(), stats.fullHandshakes());
    EXPECT_EQ(stats.parkEventsDecrypt(), 0u);
    EXPECT_EQ(stats.parkEvents(), stats.parkEventsSign());
}

TEST(ServeEngine, ExternalStoreIsUsed)
{
    ssl::ShardedSessionCache store(4);
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 1;
    cfg.connectionsPerWorker = 4;
    cfg.bulkBytes = 0;
    cfg.sessionStore = &store;
    serve::ServeEngine engine(std::move(cfg));
    engine.run();
    EXPECT_EQ(&engine.sessionStore(), &store);
    EXPECT_GT(store.size(), 0u);
}

// ---------------------------------------------------------------------
// Data-plane session mode (batched gather flush)

TEST(DataPlane, BatchedFlushMovesEveryBulkByte)
{
    // bulkBatchRecords > 0: the bulk phase goes out as gather-sends of
    // up to N record-sized spans. Byte accounting must match the
    // legacy per-record mode exactly, and the batched sends must show
    // up in both the worker stats and the serve.* counters.
    obs::MetricsRegistry registry;
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 6;
    cfg.bulkBytes = 10000; // deliberately not a record multiple
    cfg.recordBytes = 1024;
    cfg.bulkBatchRecords = 4;
    cfg.metrics = &registry;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    EXPECT_EQ(stats.fullHandshakes() + stats.resumedHandshakes(), 12u);
    EXPECT_EQ(stats.bulkBytesMoved(), 12u * 10000u);
    // 10000 bytes at 1024/record = 10 records per connection, flushed
    // in batches of at most 4.
    EXPECT_EQ(stats.dataPlaneRecords(), 12u * 10u);
    EXPECT_GE(stats.dataPlaneFlushes(), 12u * 3u);
    EXPECT_EQ(stats.metrics.counter("serve.dataplane_records"),
              stats.dataPlaneRecords());
    EXPECT_EQ(stats.metrics.counter("serve.dataplane_flushes"),
              stats.dataPlaneFlushes());
}

TEST(DataPlane, LegacyModeReportsNoDataPlaneActivity)
{
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 1;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.bulkBytesMoved(), 12u * 4096u);
    EXPECT_EQ(stats.dataPlaneFlushes(), 0u);
    EXPECT_EQ(stats.dataPlaneRecords(), 0u);
}

TEST(DataPlane, BatchedFlushStaysZeroAllocInSteadyState)
{
    // The end-to-end form of the bench gate: a multi-worker data-plane
    // run in which every record is laid out in a per-session arena and
    // accepted whole by the transport. The record.scratch_grows that
    // do occur happen during each session's first records (cold
    // arenas); record.pending_spills must be identically zero — the
    // in-memory transport never refuses.
    obs::MetricsRegistry registry;
    serve::ServeConfig cfg = engineConfig();
    cfg.workers = 2;
    cfg.connectionsPerWorker = 4;
    cfg.bulkBytes = 65536;
    cfg.recordBytes = 4096;
    cfg.bulkBatchRecords = 8;
    cfg.metrics = &registry;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();
    EXPECT_EQ(stats.bulkBytesMoved(), 8u * 65536u);
    EXPECT_EQ(stats.metrics.counter("record.pending_spills"), 0u);
    // Each connection's arena grows a bounded number of times while
    // warming (geometric doubling to one record image), never per
    // record: 16 flushes x 8 records per connection would otherwise
    // show hundreds of growth events.
    EXPECT_LE(stats.metrics.counter("record.scratch_grows"),
              8u * 24u);
}

TEST(ServeEngine, RejectsMissingIdentity)
{
    serve::ServeConfig cfg;
    cfg.connectionsPerWorker = 1;
    EXPECT_THROW(serve::ServeEngine e(std::move(cfg)),
                 std::invalid_argument);
}

} // anonymous namespace

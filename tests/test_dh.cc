/**
 * @file
 * Diffie-Hellman tests: group validation, key agreement, degenerate
 * value rejection, and full DHE_RSA handshakes (SSLv3 and TLS).
 */

#include <gtest/gtest.h>

#include "bn/modexp.hh"
#include "bn/prime.hh"
#include "perf/probe.hh"
#include "crypto/dh.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::crypto;
using bn::BigNum;

RandomPool &
dhPool()
{
    static RandomPool pool(toBytes("dh-tests"));
    return pool;
}

TEST(Dh, OakleyGroup2IsASafePrime)
{
    const DhParams &g = oakleyGroup2();
    EXPECT_EQ(g.p.bitLength(), 1024u);
    EXPECT_EQ(g.g, BigNum(2));
    auto rng = test::seededRng(1);
    EXPECT_TRUE(bn::millerRabin(g.p, 8, rng));
    BigNum q = (g.p - BigNum(1)).shiftRight(1);
    EXPECT_TRUE(bn::millerRabin(q, 8, rng));
}

TEST(Dh, KeyGeneration)
{
    const DhParams &g = oakleyGroup2();
    DhKeyPair kp = dhGenerateKey(g, dhPool());
    EXPECT_EQ(kp.priv.bitLength(), 256u);
    EXPECT_GT(kp.pub, BigNum(1));
    EXPECT_LT(kp.pub, g.p);
    // pub really is g^priv mod p.
    EXPECT_EQ(kp.pub, bn::modExp(g.g, kp.priv, g.p));
}

TEST(Dh, KeysAreFresh)
{
    const DhParams &g = oakleyGroup2();
    DhKeyPair a = dhGenerateKey(g, dhPool());
    DhKeyPair b = dhGenerateKey(g, dhPool());
    EXPECT_NE(a.priv, b.priv);
    EXPECT_NE(a.pub, b.pub);
}

TEST(Dh, Agreement)
{
    const DhParams &g = oakleyGroup2();
    DhKeyPair alice = dhGenerateKey(g, dhPool());
    DhKeyPair bob = dhGenerateKey(g, dhPool());
    Bytes z1 = dhComputeShared(g, bob.pub, alice.priv);
    Bytes z2 = dhComputeShared(g, alice.pub, bob.priv);
    EXPECT_EQ(z1, z2);
    EXPECT_FALSE(z1.empty());
}

TEST(Dh, RejectsDegeneratePublicValues)
{
    const DhParams &g = oakleyGroup2();
    DhKeyPair kp = dhGenerateKey(g, dhPool());
    EXPECT_THROW(dhComputeShared(g, BigNum(0), kp.priv),
                 std::domain_error);
    EXPECT_THROW(dhComputeShared(g, BigNum(1), kp.priv),
                 std::domain_error);
    EXPECT_THROW(dhComputeShared(g, g.p - BigNum(1), kp.priv),
                 std::domain_error);
    EXPECT_THROW(dhComputeShared(g, g.p, kp.priv), std::domain_error);
}

TEST(Dh, SmallGroupSanity)
{
    // A toy group computed by hand: p=23, g=5.
    DhParams g{BigNum(23), BigNum(5)};
    // 5^6 mod 23 = 8; 5^15 mod 23 = 19; shared = 5^90 mod 23 = 2^...
    Bytes z1 = dhComputeShared(g, BigNum(19), BigNum(6));
    Bytes z2 = dhComputeShared(g, BigNum(8), BigNum(15));
    EXPECT_EQ(z1, z2);
    EXPECT_EQ(BigNum::fromBytesBE(z1),
              bn::modExp(BigNum(5), BigNum(90), BigNum(23)));
}

// ---- DHE handshakes ----------------------------------------------------

struct DheHarness
{
    ssl::BioPair wires;
    ssl::ServerConfig scfg;
    ssl::ClientConfig ccfg;
    RandomPool pool{toBytes("dhe-handshake")};

    DheHarness()
    {
        scfg.certificate = test::testServerCert();
        scfg.privateKey = test::testKey1024().priv;
        scfg.randomPool = &pool;
        scfg.suites = {ssl::CipherSuiteId::DHE_RSA_AES_128_CBC_SHA};
        ccfg.randomPool = &pool;
    }
};

class DheSuites : public ::testing::TestWithParam<
                      std::pair<ssl::CipherSuiteId, uint16_t>>
{};

TEST_P(DheSuites, HandshakeAndTransfer)
{
    auto [suite, version] = GetParam();
    DheHarness h;
    h.scfg.suites = {suite};
    h.ccfg.suites = {suite};
    h.ccfg.maxVersion = version;

    ssl::SslServer server(h.scfg, h.wires.serverEnd());
    ssl::SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);

    EXPECT_EQ(client.suite().id, suite);
    EXPECT_EQ(client.suite().kx, ssl::KxKind::DheRsa);
    EXPECT_EQ(client.negotiatedVersion(), version);

    client.writeApplicationData(toBytes("dhe data"));
    auto got = server.readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "dhe data");
}

INSTANTIATE_TEST_SUITE_P(
    SuitesAndVersions, DheSuites,
    ::testing::Values(
        std::pair{ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA,
                  ssl::ssl3Version},
        std::pair{ssl::CipherSuiteId::DHE_RSA_AES_128_CBC_SHA,
                  ssl::ssl3Version},
        std::pair{ssl::CipherSuiteId::DHE_RSA_AES_128_CBC_SHA,
                  ssl::tls1Version},
        std::pair{ssl::CipherSuiteId::DHE_RSA_AES_256_CBC_SHA,
                  ssl::tls1Version}));

TEST(DheHandshake, CertificateStillVerifiable)
{
    DheHarness h;
    h.ccfg.trustedIssuer = &test::testKey1024().pub;
    ssl::SslServer server(h.scfg, h.wires.serverEnd());
    ssl::SslClient client(h.ccfg, h.wires.clientEnd());
    runLockstep(client, server);
    EXPECT_TRUE(client.handshakeDone());
}

TEST(DheHandshake, TamperedServerKxRejected)
{
    // Flip a bit in the ServerKeyExchange in flight; the client must
    // reject the signature.
    DheHarness h;
    ssl::SslServer server(h.scfg, h.wires.serverEnd());
    ssl::SslClient client(h.ccfg, h.wires.clientEnd());

    client.advance(); // hello out
    server.advance(); // hello/cert/skx/done out

    ssl::BioEndpoint ce = h.wires.clientEnd();
    Bytes buf(16384);
    size_t n = ce.peek(buf.data(), buf.size());
    ASSERT_GT(n, 600u);
    // Find the ServerKeyExchange (type 12) and corrupt its dh_Ys
    // region (a fixed offset into the server flight would be fragile;
    // flip a byte well inside the second half of the flight, which is
    // the skx params for our message sizes).
    buf[n - 200] ^= 0x01;
    ce.consume(n);
    h.wires.serverEnd().write(buf.data(), n);

    EXPECT_THROW(
        {
            for (int i = 0; i < 20; ++i) {
                client.advance();
                server.advance();
            }
        },
        ssl::SslError);
}

TEST(DheHandshake, DheSessionResumes)
{
    ssl::SessionCache cache;
    DheHarness h;
    h.scfg.sessionCache = &cache;
    ssl::SslServer server1(h.scfg, h.wires.serverEnd());
    ssl::SslClient client1(h.ccfg, h.wires.clientEnd());
    runLockstep(client1, server1);

    DheHarness h2;
    h2.scfg.sessionCache = &cache;
    h2.ccfg.resumeSession = client1.session();
    ssl::SslServer server2(h2.scfg, h2.wires.serverEnd());
    ssl::SslClient client2(h2.ccfg, h2.wires.clientEnd());
    runLockstep(client2, server2);
    EXPECT_TRUE(client2.resumed());
    EXPECT_TRUE(server2.resumed());
}

TEST(DheHandshake, KxProbesFire)
{
    perf::PerfContext ctx;
    DheHarness h;
    std::unique_ptr<ssl::SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        server = std::make_unique<ssl::SslServer>(h.scfg,
                                                  h.wires.serverEnd());
    }
    ssl::SslClient client(h.ccfg, h.wires.clientEnd());
    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            progress |= server->advance();
        }
        ASSERT_TRUE(progress);
    }
    EXPECT_TRUE(ctx.counters().count("step3b_send_server_kx"));
    EXPECT_TRUE(ctx.counters().count("dh_generate_key"));
    EXPECT_TRUE(ctx.counters().count("dh_compute_key"));
    EXPECT_TRUE(ctx.counters().count("rsa_private_encryption"));
    // No RSA decryption happens on the DHE path.
    EXPECT_FALSE(ctx.counters().count("rsa_private_decryption"));
}

} // anonymous namespace

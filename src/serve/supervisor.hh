/**
 * @file
 * Heartbeat supervisor over the crypto pool (and, optionally, engine
 * workers): the recovery half of the overload control plane.
 *
 * A crypto thread that dies or wedges mid-job is the one failure PR 4's
 * fault harness could not express and the serving engine cannot see:
 * the session is parked, parking exempts it from the engine's
 * virtual-tick deadlines (a parked session is *supposed* to be slow),
 * so nothing ever times it out — a silent, permanent hang. The
 * Supervisor closes that hole. Every pool thread exposes a heartbeat
 * and a job-start stamp (CryptoPool::healthView); a thread that is
 * busy but has made no observable progress past the stall threshold is
 * declared dead, its in-flight job is failed with
 * crypto::ProviderFailureError (surfaced by the endpoint as a fatal
 * internal_error alert — the session terminates instead of hanging),
 * and a replacement thread is spawned with fresh key replicas
 * (CryptoPool::reapThread). Detection and resolution are first-wins
 * against the original thread, so a merely-slow thread completing
 * concurrently is harmless.
 *
 * Engine workers register external heartbeat slots through watch();
 * stalls there are counted and logged (an engine worker shares the
 * process — it cannot be respawned, only observed).
 */

#ifndef SSLA_SERVE_SUPERVISOR_HH
#define SSLA_SERVE_SUPERVISOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/cryptopool.hh"

namespace ssla::serve
{

struct SupervisorConfig
{
    /** Health-poll period in microseconds. */
    uint64_t pollIntervalUs = 200;
    /**
     * A busy thread whose latest progress stamp (heartbeat or
     * job start) is older than this many cycles is declared dead.
     * Must comfortably exceed the worst-case legitimate job (an
     * RSA-2048 decrypt on the bn32 backend); 0 = ~100 ms.
     */
    uint64_t stallThresholdCycles = 0;
    /**
     * Restart budget: past it the supervisor stops reaping (a pool
     * that keeps killing threads has a bug, not bad luck) and logs
     * once. Generous by default.
     */
    uint64_t maxRestarts = 1024;
};

/** Watches a CryptoPool's thread health; reaps and respawns stalls. */
class Supervisor
{
  public:
    /** @p pool must outlive this supervisor (destroy this first). */
    explicit Supervisor(CryptoPool &pool, SupervisorConfig cfg = {});
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Register an external heartbeat slot (e.g. one per engine
     * worker): the owner stores rdcycles() into the returned atomic
     * each sweep; the supervisor counts (and logs once per episode)
     * slots that go stale. The pointer stays valid for the
     * supervisor's lifetime. Safe from any thread.
     */
    std::atomic<uint64_t> *watch(std::string label);

    /** Crypto threads reaped + respawned by this supervisor. */
    uint64_t restarts() const
    {
        return restarts_.load(std::memory_order_relaxed);
    }

    /** Stall episodes observed on external (engine-worker) slots. */
    uint64_t externalStalls() const
    {
        return externalStalls_.load(std::memory_order_relaxed);
    }

    /** Health polls completed (liveness probe for tests). */
    uint64_t polls() const
    {
        return polls_.load(std::memory_order_relaxed);
    }

    /** Re-point supervisor.* metrics (bind before traffic flows). */
    void bindMetrics(obs::MetricsRegistry *reg);

    /**
     * Dump the supervisor's control-plane trace (ThreadRestart events
     * on obs::supervisorTrack) into @p sink at destruction.
     */
    void
    bindTraceSink(obs::TraceSink *sink)
    {
        traceSink_.store(sink, std::memory_order_release);
    }

  private:
    struct ExternalWatch
    {
        std::string label;
        std::atomic<uint64_t> heartbeat{0};
        bool stalledNow = false; ///< supervisor thread only
    };

    void loop();
    void poll(obs::SessionTrace &trace);

    CryptoPool &pool_;
    SupervisorConfig cfg_;
    std::atomic<uint64_t> restarts_{0};
    std::atomic<uint64_t> externalStalls_{0};
    std::atomic<uint64_t> polls_{0};
    std::atomic<obs::TraceSink *> traceSink_{nullptr};
    obs::Counter ctrRestarts_;
    obs::Counter ctrExternalStalls_;

    mutable std::mutex watchM_;
    std::deque<ExternalWatch> watches_;

    std::mutex stopM_;
    std::condition_variable stopCv_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_SUPERVISOR_HH

# Empty dependencies file for bench_resumption.
# This may be replaced when dependencies are built.

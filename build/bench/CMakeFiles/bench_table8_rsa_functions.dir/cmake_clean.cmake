file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_rsa_functions.dir/bench_table8_rsa_functions.cc.o"
  "CMakeFiles/bench_table8_rsa_functions.dir/bench_table8_rsa_functions.cc.o.d"
  "bench_table8_rsa_functions"
  "bench_table8_rsa_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_rsa_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

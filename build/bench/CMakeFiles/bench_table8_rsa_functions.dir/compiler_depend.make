# Empty compiler generated dependencies file for bench_table8_rsa_functions.
# This may be replaced when dependencies are built.

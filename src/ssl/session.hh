/**
 * @file
 * SSL sessions and the server-side session cache.
 *
 * Resumption is the optimization the paper points to in Section 4.1:
 * "Session re-negotiation using the previously setup keys can avoid
 * the public key encryption, therefore greatly reduces the handshake
 * overhead." The bench_resumption binary quantifies exactly that.
 *
 * The cache bounds both entry count (LRU eviction) and entry age
 * (paper-era servers expired sessions after ~5 minutes so stolen
 * master secrets have a bounded window).
 */

#ifndef SSLA_SSL_SESSION_HH
#define SSLA_SSL_SESSION_HH

#include <functional>
#include <list>
#include <map>
#include <optional>

#include "ssl/ciphersuite.hh"
#include "util/types.hh"

namespace ssla::ssl
{

/** The resumable state of an established SSL session. */
struct Session
{
    Bytes id;            ///< server-assigned session id (32 bytes)
    uint16_t suiteId = 0;
    uint16_t version = 0x0300; ///< protocol version of the session
    Bytes masterSecret;  ///< 48 bytes

    bool valid() const { return !id.empty() && !masterSecret.empty(); }
};

/**
 * Where a server looks up and deposits resumable sessions. The
 * interface seam lets single-threaded servers keep the plain
 * SessionCache while the serving engine plugs in the lock-striped
 * ShardedSessionCache (ssl/shardcache.hh) so sessions established on
 * one worker resume on any other.
 */
class SessionStore
{
  public:
    virtual ~SessionStore() = default;

    /** Insert or refresh a session. */
    virtual void store(const Session &session) = 0;

    /** Look up by id (nullopt on miss/expiry). */
    virtual std::optional<Session> find(const Bytes &id) = 0;

    /** Drop a session (e.g. after a fatal alert on it). */
    virtual void remove(const Bytes &id) = 0;
};

/**
 * A bounded LRU cache of resumable sessions, keyed by session id,
 * with optional age-based expiry. Not thread-safe — it is either
 * owned by one thread or wrapped in ShardedSessionCache.
 */
class SessionCache : public SessionStore
{
  public:
    /**
     * @param max_entries LRU capacity
     * @param ttl_seconds entry lifetime; 0 disables expiry
     */
    explicit SessionCache(size_t max_entries = 1024,
                          uint64_t ttl_seconds = 0)
        : maxEntries_(max_entries), ttlSeconds_(ttl_seconds)
    {}

    /** Insert or refresh a session (restamps its age). */
    void store(const Session &session) override;

    /** Look up by id; refreshes LRU position on a (non-expired) hit. */
    std::optional<Session> find(const Bytes &id) override;

    /** Drop a session (e.g. after a fatal alert on it). */
    void remove(const Bytes &id) override;

    size_t size() const { return entries_.size(); }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t expirations() const { return expirations_; }

    /**
     * Override the time source (seconds); for deterministic tests.
     * The default reads the steady clock.
     */
    void setClock(std::function<uint64_t()> clock)
    {
        clock_ = std::move(clock);
    }

  private:
    struct Entry
    {
        Session session;
        uint64_t storedAt = 0;
    };

    uint64_t now() const;

    size_t maxEntries_;
    uint64_t ttlSeconds_;
    // LRU list, most recent first, with an index into it.
    std::list<Entry> lru_;
    std::map<Bytes, std::list<Entry>::iterator> entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t expirations_ = 0;
    std::function<uint64_t()> clock_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_SESSION_HH

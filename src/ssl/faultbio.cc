#include "ssl/faultbio.hh"

#include "ssl/record.hh"

namespace ssla::ssl
{

namespace
{

/** splitmix64 step — decorrelates the two directions of a pair. */
uint64_t
mixSeed(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // anonymous namespace

FaultPlan
FaultPlan::mixed(uint64_t seed, double rate, uint64_t stall_ticks)
{
    FaultPlan plan;
    plan.dropRate = rate;
    plan.truncateRate = rate;
    plan.corruptRate = rate;
    plan.duplicateRate = rate;
    plan.reorderRate = rate;
    plan.stallRate = rate;
    plan.bitflipCiphertextRate = rate;
    plan.bitflipHeaderRate = rate;
    plan.stallTicks = stall_ticks;
    plan.seed = seed;
    return plan;
}

FaultPlan
FaultPlan::bitflip(uint64_t seed, FaultKind kind, double rate)
{
    FaultPlan plan;
    plan.seed = seed;
    if (kind == FaultKind::BitflipCiphertext)
        plan.bitflipCiphertextRate = rate;
    else
        plan.bitflipHeaderRate = rate;
    return plan;
}

FaultyBio::FaultyBio(const FaultPlan &plan, uint64_t seed_mix)
    : plan_(plan), rng_(mixSeed(plan.seed ^ seed_mix))
{
    setMaxBuffered(plan.maxBuffered);
}

bool
FaultyBio::write(const uint8_t *data, size_t len)
{
    // The adversary models the network: the sender's write always
    // succeeds; what the reader sees is the plan's business.
    assembly_.insert(assembly_.end(), data, data + len);
    frameRecords();
    drain();
    return true;
}

bool
FaultyBio::writev(const ConstSpan *iov, size_t iovcnt)
{
    for (size_t i = 0; i < iovcnt; ++i)
        assembly_.insert(assembly_.end(), iov[i].data(),
                         iov[i].data() + iov[i].size());
    frameRecords();
    drain();
    return true;
}

void
FaultyBio::frameRecords()
{
    for (;;) {
        if (assembly_.size() < 5)
            return;
        uint8_t type = assembly_[0];
        size_t frag_len = (static_cast<size_t>(assembly_[3]) << 8) |
                          assembly_[4];
        bool plausible = type >= 20 && type <= 23 &&
                         assembly_[1] == 0x03 &&
                         frag_len <= maxFragment + 2048;
        if (!plausible) {
            // Not an SSL record stream (only possible if a caller
            // bypasses the record layer): pass the bytes through
            // verbatim rather than buffering them forever.
            stage(std::move(assembly_), now_);
            assembly_ = Bytes();
            return;
        }
        if (assembly_.size() < 5 + frag_len)
            return; // incomplete record: wait for the rest
        Bytes record(assembly_.begin(),
                     assembly_.begin() + 5 + frag_len);
        assembly_.erase(assembly_.begin(),
                        assembly_.begin() + 5 + frag_len);
        ++counts_.records;
        applyFaults(std::move(record));
    }
}

void
FaultyBio::traceFault(const char *label)
{
    if (trace_)
        trace_->record(obs::TraceEventKind::FaultInjected,
                       obs::traceSideChannel, label, traceDirection_,
                       counts_.records);
}

void
FaultyBio::applyFaults(Bytes record)
{
    // One mutating fault per record at most (first match wins), plus
    // an independent stall draw — outcomes stay attributable.
    if (rng_.nextDouble() < plan_.dropRate) {
        ++counts_.dropped;
        traceFault("drop");
        return;
    }

    bool duplicate = false;
    bool reorder = false;
    // Bit-level kinds draw only when armed, so plans without them
    // replay historical per-seed fault sequences unchanged.
    if (plan_.bitflipCiphertextRate > 0 && record.size() > 5 &&
        rng_.nextDouble() < plan_.bitflipCiphertextRate) {
        size_t bit = rng_.nextBelow((record.size() - 5) * 8);
        record[5 + bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        ++counts_.bitflippedCiphertext;
        traceFault("bitflip_ciphertext");
    } else if (plan_.bitflipHeaderRate > 0 &&
               rng_.nextDouble() < plan_.bitflipHeaderRate) {
        size_t bit = rng_.nextBelow(5 * 8);
        record[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        ++counts_.bitflippedHeader;
        traceFault("bitflip_header");
    } else if (rng_.nextDouble() < plan_.truncateRate &&
               record.size() > 1) {
        size_t cut = 1 + rng_.nextBelow(record.size() - 1);
        record.resize(record.size() - cut);
        ++counts_.truncated;
        traceFault("truncate");
    } else if (rng_.nextDouble() < plan_.corruptRate) {
        record[rng_.nextBelow(record.size())] ^=
            static_cast<uint8_t>(1 + rng_.nextBelow(255));
        ++counts_.corrupted;
        traceFault("corrupt");
    } else if (rng_.nextDouble() < plan_.duplicateRate) {
        duplicate = true;
        ++counts_.duplicated;
        traceFault("duplicate");
    } else if (rng_.nextDouble() < plan_.reorderRate) {
        reorder = true;
    }

    uint64_t due = now_;
    if (rng_.nextDouble() < plan_.stallRate) {
        due = now_ + plan_.stallTicks;
        ++counts_.stalled;
        traceFault("stall");
    }

    if (reorder && !staged_.empty()) {
        // Swap with the record ahead of it: deliverable whenever two
        // records are in flight together (multi-record flights, stall
        // backlogs). With an empty queue there is nothing to swap.
        StagedRecord ahead = std::move(staged_.back());
        staged_.pop_back();
        staged_.push_back({std::move(record), due});
        staged_.push_back(std::move(ahead));
        ++counts_.reordered;
        traceFault("reorder");
        return;
    }
    if (duplicate) {
        stage(record, due);
        stage(std::move(record), due);
        return;
    }
    stage(std::move(record), due);
}

void
FaultyBio::stage(Bytes wire, uint64_t due)
{
    staged_.push_back({std::move(wire), due});
}

void
FaultyBio::drain()
{
    // Head-of-line delivery: a stalled or cap-blocked record delays
    // everything behind it, the way an in-order transport would.
    while (!staged_.empty()) {
        StagedRecord &head = staged_.front();
        if (head.dueTick > now_)
            return;
        if (!MemBio::write(head.wire.data(), head.wire.size())) {
            ++counts_.capDeferrals;
            return; // reader must drain the capped queue first
        }
        staged_.pop_front();
    }
}

void
FaultyBio::tick()
{
    ++now_;
    drain();
}

size_t
FaultyBio::read(uint8_t *out, size_t len)
{
    size_t n = MemBio::read(out, len);
    drain(); // freed cap space may admit deferred records
    return n;
}

void
FaultyBio::consume(size_t len)
{
    MemBio::consume(len);
    drain();
}

// ---------------------------------------------------------------------
// FaultyBioPair

FaultyBioPair::FaultyBioPair(const FaultPlan &plan)
    : FaultyBioPair(plan, plan)
{
}

FaultyBioPair::FaultyBioPair(const FaultPlan &c2s, const FaultPlan &s2c)
    : clientToServer_(c2s, /*seed_mix=*/0xc25ull),
      serverToClient_(s2c, /*seed_mix=*/0x52cull)
{
}

void
FaultyBioPair::tick()
{
    clientToServer_.tick();
    serverToClient_.tick();
}

uint64_t
FaultyBioPair::faultsInjected() const
{
    return clientToServer_.counts().injected() +
           serverToClient_.counts().injected();
}

} // namespace ssla::ssl

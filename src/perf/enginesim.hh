/**
 * @file
 * Discrete-event simulator of the paper's Figure 6 crypto engine.
 *
 * The engine the paper sketches has a control unit fetching record
 * descriptors from memory, a hashing unit computing the MAC, and one
 * or more cipher units encrypting — with the data body streamed
 * through cipher and hash units in parallel and only the MAC+padding
 * trailer serialized behind the hash ("several crypto units within
 * one engine can run in parallel in the bulk transfer phase").
 *
 * This simulator executes that design at record granularity: each
 * unit is a resource with a free-at time; records acquire the hash
 * unit and the least-loaded cipher unit, overlap their body phases,
 * and serialize the trailer. It reports per-record latency, total
 * makespan and unit utilizations, letting the ablation bench explore
 * unit counts and speeds rather than a single closed-form number.
 */

#ifndef SSLA_PERF_ENGINESIM_HH
#define SSLA_PERF_ENGINESIM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssla::perf
{

/** Engine configuration (rates in cycles per byte, costs in cycles). */
struct EngineConfig
{
    double cipherCyclesPerByte = 1.0;  ///< per cipher unit
    double hashCyclesPerByte = 0.25;   ///< hash unit
    unsigned cipherUnits = 1;          ///< parallel cipher units
    double descriptorOverhead = 100.0; ///< control-unit work per record
    double trailerBytes = 24.0;        ///< MAC + padding appended
};

/** Timing of one simulated record. */
struct EngineRecordTiming
{
    double dispatch = 0.0;   ///< control unit issues the descriptor
    double hashDone = 0.0;   ///< MAC available
    double cipherDone = 0.0; ///< last trailer byte encrypted
};

/** Aggregate results of a simulated record stream. */
struct EngineRunStats
{
    double makespan = 0.0;         ///< completion time of the last record
    double totalBytes = 0.0;
    double hashBusy = 0.0;         ///< cycles the hash unit worked
    double cipherBusy = 0.0;       ///< summed over cipher units
    std::vector<EngineRecordTiming> records;

    double
    throughputBytesPerCycle() const
    {
        return makespan > 0.0 ? totalBytes / makespan : 0.0;
    }

    double
    hashUtilization() const
    {
        return makespan > 0.0 ? hashBusy / makespan : 0.0;
    }
};

/** The engine simulator (single stream of records, in order). */
class CryptoEngineSim
{
  public:
    explicit CryptoEngineSim(const EngineConfig &config);

    /**
     * Submit a record of @p payload_bytes. Returns its timing; the
     * simulation clock advances internally.
     */
    EngineRecordTiming submit(double payload_bytes);

    /** Run a whole stream of equally sized records. */
    EngineRunStats run(size_t record_count, double payload_bytes);

    /** Reset the clock and unit states. */
    void reset();

  private:
    EngineConfig config_;
    double controlFree_ = 0.0;
    double hashFree_ = 0.0;
    std::vector<double> cipherFree_;
    double hashBusy_ = 0.0;
    double cipherBusy_ = 0.0;
    double totalBytes_ = 0.0;
    double lastDone_ = 0.0;
};

} // namespace ssla::perf

#endif // SSLA_PERF_ENGINESIM_HH

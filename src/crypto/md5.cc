#include "crypto/md5.hh"

#include <array>
#include <cmath>
#include <cstring>

namespace ssla::crypto
{

const uint32_t *
md5SineTable()
{
    static const std::array<uint32_t, 64> table = [] {
        std::array<uint32_t, 64> t{};
        for (int i = 0; i < 64; ++i) {
            t[i] = static_cast<uint32_t>(
                std::floor(std::fabs(std::sin(i + 1.0)) * 4294967296.0));
        }
        return t;
    }();
    return table.data();
}

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

void
Md5::init()
{
    state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
    totalLen_ = 0;
    bufferLen_ = 0;
}

void
Md5::update(const uint8_t *data, size_t len)
{
    if (!len)
        return; // empty Bytes may hand us data == nullptr
    totalLen_ += len;
    if (bufferLen_) {
        size_t take = std::min(len, blockBytes - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == blockBytes) {
            md5BlockT(state_, buffer_, nullMeter);
            bufferLen_ = 0;
        }
    }
    while (len >= blockBytes) {
        md5BlockT(state_, data, nullMeter);
        data += blockBytes;
        len -= blockBytes;
    }
    if (len) {
        std::memcpy(buffer_, data, len);
        bufferLen_ = len;
    }
}

void
Md5::final(uint8_t *out)
{
    uint64_t bit_len = totalLen_ * 8;
    // Padding: 0x80, zeros to 56 mod 64, then the 64-bit LE length —
    // assembled in one buffer so final() costs at most two block ops.
    uint8_t pad[72] = {0x80};
    size_t pad_len =
        (bufferLen_ < 56 ? 56 : 120) - bufferLen_;
    store64le(pad + pad_len, bit_len);
    update(pad, pad_len + 8);
    store32le(out, state_.a);
    store32le(out + 4, state_.b);
    store32le(out + 8, state_.c);
    store32le(out + 12, state_.d);
}

std::unique_ptr<Digest>
Md5::clone() const
{
    return std::make_unique<Md5>(*this);
}

Bytes
Md5::hash(const Bytes &data)
{
    Md5 md;
    md.update(data);
    return md.final();
}

} // namespace ssla::crypto

/**
 * @file
 * Extension bench: the Figure 6 crypto engine as a discrete-event
 * simulation, driven by per-byte rates measured from our real 3DES
 * and SHA-1 kernels. Explores the knob the paper only sketches:
 * how many parallel cipher units the bulk phase can use.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/cipher.hh"
#include "perf/enginesim.hh"
#include "perf/report.hh"
#include "ssl/record.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

namespace
{

/** Measure software cycles/byte of a bulk cipher. */
double
cipherCyclesPerByte(crypto::CipherAlg alg)
{
    const auto &info = crypto::cipherInfo(alg);
    Bytes key = benchPayload(info.keyLen, 61);
    Bytes iv = benchPayload(info.ivLen, 62);
    Bytes data = benchPayload(16384, 63);
    auto cipher = benchProvider().createCipher(alg, key, iv, true);
    return cyclesPerCall(
               [&] {
                   cipher->process(data.data(), data.data(),
                                   data.size());
               },
               20) /
           static_cast<double>(data.size());
}

/** Measure software cycles/byte of the record MAC. */
double
macCyclesPerByte(crypto::DigestAlg alg)
{
    Bytes secret(20, 1);
    Bytes data = benchPayload(16384, 64);
    return cyclesPerCall(
               [&] {
                   ssl::ssl3Mac(alg, secret, 0, 23, data.data(),
                                data.size());
               },
               20) /
           static_cast<double>(data.size());
}

} // anonymous namespace

int
main()
{
    warmUpCpu();

    // Rates from the real kernels: the engine's units are assumed to
    // match software speed (conservative — real hardware would beat
    // it), so any gain shown is pure architecture (overlap + width).
    double tdes_rate =
        cipherCyclesPerByte(crypto::CipherAlg::Des3Cbc);
    double sha_rate = macCyclesPerByte(crypto::DigestAlg::SHA1);
    std::printf("measured unit rates: 3DES %.2f cyc/B, SHA-1 MAC "
                "%.2f cyc/B\n",
                tdes_rate, sha_rate);

    constexpr size_t records = 64;
    constexpr double payload = 16384.0;
    double software_serial =
        records * (payload * (tdes_rate + sha_rate) + 200.0);

    TablePrinter table(
        "Extension (Fig 6 engine simulation): 64 x 16KB records, "
        "unit rates = measured software rates");
    table.setHeader({"cipher units", "makespan Mcyc", "vs software",
                     "hash util", "B/cycle"});
    for (unsigned units : {1u, 2u, 4u, 8u}) {
        perf::EngineConfig cfg;
        cfg.cipherCyclesPerByte = tdes_rate;
        cfg.hashCyclesPerByte = sha_rate;
        cfg.cipherUnits = units;
        cfg.descriptorOverhead = 200.0;
        perf::CryptoEngineSim sim(cfg);
        perf::EngineRunStats stats = sim.run(records, payload);
        table.addRow(
            {perf::fmt("%u", units),
             perf::fmtF(stats.makespan / 1e6, 2),
             perf::fmt("%.2fx", software_serial / stats.makespan),
             perf::fmtPct(100.0 * stats.hashUtilization(), 1),
             perf::fmtF(stats.throughputBytesPerCycle(), 3)});
    }
    table.print();

    std::printf(
        "\nWith one unit the engine gains only the MAC/cipher overlap "
        "(the paper's Figure 6); adding cipher units scales the bulk "
        "phase until the shared hash unit saturates — the quantified "
        "version of the paper's 'several crypto units ... in "
        "parallel' remark. Note: CBC chains records within one "
        "connection, so the parallel records here model a server "
        "multiplexing independent connections (or per-connection "
        "engines), exactly the web-server bulk phase the paper "
        "targets.\n");
    return 0;
}

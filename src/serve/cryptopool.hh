/**
 * @file
 * Asynchronous RSA private-key engine for the serving layer.
 *
 * Table 2 puts ~90% of a full handshake in the RSA pre-master decrypt;
 * Section 6.2's asynchronous-engine argument is that the processor
 * should "do other useful work while the crypto operation is being
 * executed". The CryptoPool realizes that across sessions: accept-path
 * workers submit private-key operations and keep multiplexing their
 * other connections; pool threads complete the jobs and the parked
 * sessions resume on the worker's next visit.
 *
 * Beyond the queue itself, the pool is the admission point of the
 * overload control loop (DESIGN.md §4i): jobs carry a class
 * (resumption / continuation / new-full-handshake) and an enqueue
 * stamp, a CoDel-style target queue delay sheds jobs whose wait
 * already exceeded their deadline budget *before* they burn a
 * Montgomery context, and the Adaptive overload policy flips per-class
 * admission from the measured queue-wait p99. A Supervisor (see
 * serve/supervisor.hh) watches per-thread heartbeats through the
 * health hooks below and respawns a thread that dies or stalls
 * mid-job, failing the in-flight job so no session ever hangs.
 *
 * THREAD OWNERSHIP: RsaPrivateKey (blinding state) and its embedded
 * MontgomeryCtx scratch are single-owner by design (see
 * bn/montgomery.hh). The pool therefore never runs a caller's key
 * object — each pool thread lazily clones a private replica from the
 * key's components and uses only that, so N pool threads give N-way
 * RSA parallelism with no locks in the hot path. Replica caches are
 * bounded (oldest evicted) so key churn cannot leak scratch.
 */

#ifndef SSLA_SERVE_CRYPTOPOOL_HH
#define SSLA_SERVE_CRYPTOPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "crypto/provider.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ssla::serve
{

/**
 * What a full CryptoPool queue does with new work. A saturated pool is
 * the expected state of an overloaded server — the policy decides
 * whether the excess handshake fails fast or degrades to the paper's
 * baseline synchronous decrypt.
 */
enum class OverloadPolicy
{
    /**
     * Refuse the job: it resolves immediately with a
     * crypto::ProviderOverloadError, which the server surfaces as a
     * fatal internal_error alert. Keeps worker latency flat; sheds
     * whole sessions.
     */
    Reject,
    /**
     * Return an invalid job; PooledProvider falls back to computing
     * synchronously on the submitting worker (the pre-offload
     * baseline). Every session completes; worker throughput degrades
     * smoothly instead of cliffing.
     */
    Shed,
    /**
     * Class-aware control loop: when the measured queue-wait p99
     * exceeds the CoDel target delay, new-full-handshake jobs are
     * refused fast (cheapest point to lose a session: before its RSA
     * cycles are spent) while continuation and resumption jobs stay
     * admitted — shed-late work is pure waste, so work already
     * invested in a handshake gets priority. Under extreme pressure
     * (p99 past twice the target) continuations shed too. The flags
     * clear with hysteresis once the p99 falls below half the target.
     */
    Adaptive,
};

/**
 * Priority class of a submitted job — who loses when RSA cycles run
 * short. Resumption work is cheapest and never shed at admission;
 * continuation work (a handshake that already consumed crypto cycles)
 * sheds only under extreme pressure; a brand-new full handshake is the
 * first to go, because refusing it wastes the least invested work.
 */
enum class JobClass : uint8_t
{
    Resumption = 0,
    Continuation = 1,
    NewFullHandshake = 2,
};

constexpr size_t jobClassCount = 3;

/** Display label for a job class ("resumption", ...). */
const char *jobClassLabel(JobClass cls);

/**
 * Thread-local attribution a submitter attaches to jobs it is about to
 * submit. The Provider interface cannot carry per-call class info
 * (endpoints submit through the generic submitRsaDecrypt/submitRsaSign
 * surface), so the serving engine binds the class for the duration of
 * one session pump and the pool reads it at enqueue.
 */
struct JobBinding
{
    JobClass cls = JobClass::NewFullHandshake;
    /**
     * Queue-wait budget for jobs submitted under this binding, in
     * cycles (0 = the pool's AdmissionControl default). A job whose
     * wait exceeds the budget is shed at dequeue with
     * crypto::ProviderDeadlineError instead of executed.
     */
    uint64_t deadlineBudgetCycles = 0;
};

/** The calling thread's current binding (defaults apply when unset). */
JobBinding currentJobBinding();

/** RAII scope setting the calling thread's JobBinding. */
class JobBindingScope
{
  public:
    explicit JobBindingScope(JobBinding binding);
    ~JobBindingScope();
    JobBindingScope(const JobBindingScope &) = delete;
    JobBindingScope &operator=(const JobBindingScope &) = delete;

  private:
    JobBinding prev_;
};

/**
 * Deadline-aware admission parameters (all in cycles, the pool's
 * native clock). Zeros select defaults when the policy is Adaptive
 * and disable the respective mechanism otherwise, preserving the
 * PR 4 Reject/Shed behavior bit-for-bit unless asked.
 */
struct AdmissionControl
{
    /**
     * CoDel-style target queue delay: the admission control loop aims
     * to keep the queue-wait p99 at or below this. 0 = default
     * (~2 ms) under Adaptive, control loop off otherwise.
     */
    uint64_t targetDelayCycles = 0;
    /** Observation interval for the p99 estimate (0 = 2x target). */
    uint64_t intervalCycles = 0;
    /**
     * Default per-job queue-wait budget: a job that waited longer is
     * dead on dequeue (its session's handshake deadline is blown, so
     * executing it is pure waste) and fails with
     * crypto::ProviderDeadlineError. 0 = 8x target under Adaptive,
     * deadline shedding off otherwise. Per-job bindings override.
     */
    uint64_t deadlineBudgetCycles = 0;
};

/**
 * Seeded crypto-side fault surface, mirroring ssl::FaultPlan for the
 * wire: per-job Bernoulli draws from a per-thread PRNG make a pool
 * thread misbehave deterministically, so chaos tests can kill a crypto
 * thread mid-job and assert the Supervisor heals the pool. All rates
 * are probabilities in [0,1].
 */
struct CryptoFaultPlan
{
    /** Job executes only after spinning this many extra cycles. */
    double slowdownRate = 0.0;
    uint64_t slowdownCycles = 0;
    /** Job fails with a runtime_error (engine fault, not overload). */
    double failRate = 0.0;
    /**
     * The executing thread dies mid-job: it exits without resolving
     * the job, leaving its health record busy — exactly what a crashed
     * thread leaves behind. Only a Supervisor recovers from this.
     */
    double threadDeathRate = 0.0;
    /** Total thread deaths allowed (deterministic test budget). */
    uint64_t maxThreadDeaths = UINT64_MAX;
    uint64_t seed = 0xfa017;

    bool
    any() const
    {
        return slowdownRate > 0.0 || failRate > 0.0 ||
               threadDeathRate > 0.0;
    }
};

/** A pool of crypto threads completing submitted RSA operations. */
class CryptoPool
{
  public:
    /**
     * @param threads number of crypto threads (min 1)
     * @param max_queue queued-job bound (0 = unbounded, the pre-hardening
     *        behavior); in-flight jobs do not count against it
     * @param policy what submits do when the queue is at the bound
     * @param admission deadline/target-delay knobs (see AdmissionControl)
     * @param faults crypto-side fault injection (tests/chaos only)
     */
    explicit CryptoPool(size_t threads = 1, size_t max_queue = 0,
                        OverloadPolicy policy = OverloadPolicy::Reject,
                        AdmissionControl admission = {},
                        CryptoFaultPlan faults = {});

    /**
     * Drains nothing: pending jobs are completed before exit. A
     * Supervisor watching this pool must be destroyed first.
     */
    ~CryptoPool();

    CryptoPool(const CryptoPool &) = delete;
    CryptoPool &operator=(const CryptoPool &) = delete;

    /**
     * Queue a PKCS#1 v1.5 decryption of @p cipher under (a per-thread
     * replica of) @p key. @p key must outlive the returned job (or the
     * job must be cancel()ed before the key dies; a cancelled queued
     * job is never executed). When the queue is at its bound the
     * overload policy applies: Reject returns a job already failed
     * with ProviderOverloadError; Shed returns an INVALID job and the
     * caller must compute synchronously; Adaptive decides per class
     * (see OverloadPolicy::Adaptive). The job is attributed to the
     * calling thread's JobBinding.
     */
    crypto::RsaJob submitDecrypt(const crypto::RsaPrivateKey &key,
                                 Bytes cipher);

    /** Queue a PKCS#1 type-1 signature over @p digest_data. */
    crypto::RsaJob submitSign(const crypto::RsaPrivateKey &key,
                              Bytes digest_data);

    /**
     * Queue an arbitrary producer (test hook: lets a test hold a job
     * open to observe the parking protocol deterministically).
     */
    crypto::RsaJob submitRaw(std::function<Bytes()> fn);

    /** Configured thread count (replacements keep it constant). */
    size_t threadCount() const { return threads_; }
    size_t maxQueue() const { return maxQueue_; }
    OverloadPolicy policy() const { return policy_; }
    const AdmissionControl &admission() const { return adm_; }

    /** Jobs currently queued (racy snapshot; monitoring only). */
    size_t queueDepth() const;

    /** Jobs completed since construction (monitoring). */
    uint64_t completedJobs() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

    /** Submits refused under the Reject policy. */
    uint64_t rejectedJobs() const
    {
        return rejected_.load(std::memory_order_relaxed);
    }

    /** Submits pushed back to the caller under the Shed policy. */
    uint64_t shedJobs() const
    {
        return shed_.load(std::memory_order_relaxed);
    }

    /** Queued jobs skipped because they were cancelled first. */
    uint64_t cancelledJobs() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** High-water mark of the queue depth. */
    uint64_t peakQueueDepth() const
    {
        return peakQueue_.load(std::memory_order_relaxed);
    }

    /** Jobs shed at dequeue because their queue wait blew the budget. */
    uint64_t deadlineShedJobs() const
    {
        return deadlineShed_.load(std::memory_order_relaxed);
    }

    /** Admission-refused jobs of @p cls (Adaptive + queue-bound). */
    uint64_t shedByClass(JobClass cls) const
    {
        return shedClass_[static_cast<size_t>(cls)].load(
            std::memory_order_relaxed);
    }

    /** True while Adaptive admission refuses new full handshakes. */
    bool adaptiveShedding() const
    {
        return sheddingNewFull_.load(std::memory_order_relaxed);
    }

    /** Latest windowed queue-wait p99 estimate, in cycles. */
    uint64_t queueWaitP99Cycles() const
    {
        return waitP99_.load(std::memory_order_relaxed);
    }

    /** Crypto threads respawned by a Supervisor. */
    uint64_t threadRestarts() const
    {
        return threadRestarts_.load(std::memory_order_relaxed);
    }

    /** In-flight jobs failed by a Supervisor (thread died/stalled). */
    uint64_t supervisedJobFailures() const
    {
        return supervisedFailures_.load(std::memory_order_relaxed);
    }

    /** Live key replicas across all pool threads (leak monitoring). */
    uint64_t replicaCount() const
    {
        return replicas_.load(std::memory_order_relaxed);
    }

    // --- Supervisor health surface -------------------------------------
    // A Supervisor polls these to detect a thread that died or stalled
    // mid-job and to heal the pool. Not intended for general use.

    /** Racy view of one thread slot's health (see healthSlots()). */
    struct ThreadHealthView
    {
        uint64_t heartbeatCycles = 0; ///< last loop-top rdcycles()
        uint64_t jobStartCycles = 0;  ///< rdcycles() at job pickup
        bool busy = false;            ///< a job is (or died) in flight
        bool retired = false;         ///< already reaped or exiting
    };

    /** Number of thread slots ever spawned (grows on respawn). */
    size_t healthSlots() const;

    /** Health snapshot of slot @p index (< healthSlots()). */
    ThreadHealthView healthView(size_t index) const;

    /**
     * Declare slot @p index dead: fail its in-flight job with
     * crypto::ProviderFailureError (first-wins — a slow-but-alive
     * thread completing concurrently is harmless), retire the thread
     * (an alive one exits after its current job instead of taking
     * more), and spawn a replacement that rebuilds fresh key replicas
     * lazily. Returns false when the slot was already retired.
     * Called by the Supervisor; safe from any thread.
     */
    bool reapThread(size_t index, const char *reason);

    /**
     * Re-point the cryptopool.* metrics (queue-wait and service-time
     * histograms, outcome counters, queue-depth gauge) at @p reg (null
     * restores the global registry). Handles are read by pool and
     * submitter threads without synchronization: bind while the pool
     * is quiescent — right after construction, before jobs flow.
     */
    void bindMetrics(obs::MetricsRegistry *reg);

    /**
     * Mirror each pool thread's job execution into @p sink: every
     * thread keeps a ring trace on track cryptoTrackBase+index with
     * JobStart/JobEnd span events, dumped to the sink when the pool
     * shuts down. Null disables. Safe to call while running.
     */
    void
    bindTraceSink(obs::TraceSink *sink)
    {
        traceSink_.store(sink, std::memory_order_release);
    }

  private:
    enum class Kind
    {
        Decrypt,
        Sign,
        Raw,
    };

    struct Job
    {
        Kind kind;
        const crypto::RsaPrivateKey *key = nullptr;
        Bytes input;
        std::function<Bytes()> fn;
        std::shared_ptr<crypto::RsaJob::State> state;
        uint64_t submitCycles = 0; ///< for the queue-wait histogram
        JobClass cls = JobClass::NewFullHandshake;
        uint64_t deadlineCycles = 0; ///< absolute shed point (0 = none)
    };

    /** One spawned thread's health record (stable address in deque). */
    struct ThreadRecord
    {
        std::atomic<uint64_t> heartbeat{0};
        std::atomic<uint64_t> jobStart{0};
        std::atomic<bool> busy{false};
        std::atomic<bool> retired{false};
        /** In-flight job, guarded by jobM (lock order: m_ then jobM). */
        std::mutex jobM;
        std::shared_ptr<crypto::RsaJob::State> inflight;
        uint64_t faultSeed = 0;
    };

    crypto::RsaJob enqueue(Job job);
    void workerLoop(size_t index);
    /** Stable pointer to a health slot (locks against deque growth). */
    ThreadRecord *recordAt(size_t index) const;
    /** Spawn a worker on a fresh health slot (ctor + respawn). */
    void spawnWorker();
    /** Adaptive admission refusal for @p cls (relaxed flag reads). */
    bool adaptiveRefuses(JobClass cls) const;
    /** Update the CoDel control state; caller holds m_. */
    void controlUpdate(uint64_t now, uint64_t wait_cycles);
    /** Recompute the windowed p99 and flip flags; caller holds m_. */
    void controlRecompute(uint64_t now);
    /** Refresh (or decay) the control state from the enqueue side. */
    void controlTouchIdle(uint64_t now);
    void countClassShed(JobClass cls);

    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    size_t threads_ = 1;
    size_t maxQueue_ = 0;
    OverloadPolicy policy_ = OverloadPolicy::Reject;
    AdmissionControl adm_;
    CryptoFaultPlan faults_;
    std::atomic<uint64_t> deathBudget_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> peakQueue_{0};
    std::atomic<uint64_t> deadlineShed_{0};
    std::atomic<uint64_t> shedClass_[jobClassCount] = {};
    std::atomic<uint64_t> threadRestarts_{0};
    std::atomic<uint64_t> supervisedFailures_{0};
    std::atomic<uint64_t> replicas_{0};
    std::atomic<bool> sheddingNewFull_{false};
    std::atomic<bool> sheddingContinuation_{false};
    std::atomic<uint64_t> waitP99_{0};

    // CoDel control-loop window (guarded by m_).
    static constexpr size_t waitWindow = 64;
    uint64_t waitSamples_[waitWindow] = {};
    size_t waitSampleCount_ = 0;
    uint64_t intervalStartCycles_ = 0;
    size_t intervalSampleMark_ = 0;

    std::atomic<obs::TraceSink *> traceSink_{nullptr};
    obs::Histogram histQueueWait_;
    obs::Histogram histService_;
    obs::Counter ctrCompleted_;
    obs::Counter ctrRejected_;
    obs::Counter ctrShed_;
    obs::Counter ctrCancelled_;
    obs::Counter ctrDeadlineShed_;
    obs::Counter ctrShedClass_[jobClassCount];
    obs::Counter ctrRestarts_;
    obs::Counter ctrSupervisedFailures_;
    obs::Gauge gaugeDepth_;
    obs::Gauge gaugeShedding_;

    /** Guards health_ growth and workers_ (never held with jobM). */
    mutable std::mutex healthM_;
    std::deque<ThreadRecord> health_;
    std::vector<std::thread> workers_;
};

/**
 * Provider adapter giving SSL endpoints the asynchronous RSA path:
 * submitRsaDecrypt/submitRsaSign go to the CryptoPool (so the server
 * parks at ClientKeyExchange instead of stalling), everything else —
 * ciphers, digests, record MACs, synchronous RSA — delegates to the
 * wrapped provider. Safe to share across workers: the adapter is
 * stateless and the pool is internally synchronized.
 */
class PooledProvider final : public crypto::Provider
{
  public:
    /**
     * @param pool the crypto pool (not owned; must outlive this)
     * @param inner synchronous fallback; null selects the scalar
     *        provider singleton
     */
    explicit PooledProvider(CryptoPool &pool,
                            crypto::Provider *inner = nullptr);

    const char *name() const override { return "pooled"; }
    std::unique_ptr<crypto::Cipher>
    createCipher(crypto::CipherAlg alg, const Bytes &key,
                 const Bytes &iv, bool encrypt) override;
    std::unique_ptr<crypto::Digest>
    createDigest(crypto::DigestAlg alg) override;
    std::unique_ptr<crypto::Hmac> createHmac(crypto::DigestAlg alg,
                                             const Bytes &key) override;
    size_t recordMac(const crypto::RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    Bytes rsaDecrypt(const crypto::RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const crypto::RsaPrivateKey &key,
                  const Bytes &digest_data) override;
    crypto::RsaJob submitRsaDecrypt(const crypto::RsaPrivateKey &key,
                                    Bytes cipher) override;
    crypto::RsaJob submitRsaSign(const crypto::RsaPrivateKey &key,
                                 Bytes digest_data) override;
    /** The wrapped provider's backend (pool replicas follow the key). */
    const bn::Engine &
    bnEngine() const override
    {
        return inner_.bnEngine();
    }

  private:
    CryptoPool &pool_;
    crypto::Provider &inner_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_CRYPTOPOOL_HH

/**
 * @file
 * Trace-analysis framework tests: the strict JSON parser (exact
 * integers, rejection with line/column), JSONL and Chrome ingest into
 * the event graph, the exporter round trip (JSONL and Chrome renderings
 * of the same trace ingest to the same session history), pass
 * determinism (byte-identical reports on the same corpus), the bench
 * regression diff failing closed on an injected gate regression, and
 * the outcome-keyed sampling policy (failed sessions survive 1-in-N
 * sampling end to end through a faulted engine run).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/analysis/diff.hh"
#include "obs/analysis/model.hh"
#include "obs/analysis/pass.hh"
#include "obs/export.hh"
#include "obs/trace.hh"
#include "serve/engine.hh"
#include "ssl/faultbio.hh"
#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::obs::analysis;
using obs::SessionTrace;
using obs::TraceEventKind;
using obs::TraceSampling;

// ---------------------------------------------------------------------
// JSON parser

TEST(AnalysisJson, ParsesExactIntegersBeyondDoubleMantissa)
{
    // 2^63 + 3 would round under a double; the parser must keep it.
    Json v = parseJson("{\"cycles\":9223372036854775811}");
    const Json *c = v.find("cycles");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->type, Json::Type::Uint);
    EXPECT_EQ(c->asU64(), 9223372036854775811ull);

    Json neg = parseJson("-42");
    EXPECT_EQ(neg.type, Json::Type::Int);
    EXPECT_EQ(neg.i, -42);

    Json d = parseJson("2.5e3");
    EXPECT_EQ(d.type, Json::Type::Double);
    EXPECT_DOUBLE_EQ(d.number(), 2500.0);
}

TEST(AnalysisJson, RejectsMalformedInputWithPosition)
{
    EXPECT_THROW(parseJson("{\"a\":NaN}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1,}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1} trailing"), JsonError);
    try {
        parseJson("{\n\"a\": nope\n}");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(AnalysisJson, PreservesObjectMemberOrder)
{
    Json v = parseJson("{\"z\":1,\"a\":2,\"m\":3}");
    ASSERT_EQ(v.obj.size(), 3u);
    EXPECT_EQ(v.obj[0].first, "z");
    EXPECT_EQ(v.obj[1].first, "a");
    EXPECT_EQ(v.obj[2].first, "m");
}

// ---------------------------------------------------------------------
// JSONL ingest

const char *kJsonlFixture =
    "{\"serial\":7,\"track\":0,\"cycles\":100,\"tick\":0,"
    "\"kind\":\"ConnOpen\",\"side\":\"engine\",\"label\":\"clean\"}\n"
    "{\"serial\":7,\"track\":0,\"cycles\":150,\"tick\":1,"
    "\"kind\":\"StateEnter\",\"side\":\"server\","
    "\"label\":\"GetClientHello\"}\n"
    "{\"serial\":7,\"track\":0,\"cycles\":400,\"tick\":2,"
    "\"kind\":\"Park\",\"side\":\"engine\",\"code\":3,"
    "\"label\":\"rsa_decrypt\"}\n"
    "{\"serial\":7,\"track\":0,\"cycles\":900,\"tick\":5,"
    "\"kind\":\"Resume\",\"side\":\"engine\",\"code\":3,"
    "\"label\":\"rsa_decrypt\"}\n"
    "{\"serial\":7,\"track\":0,\"cycles\":950,\"tick\":5,"
    "\"kind\":\"AlertSend\",\"side\":\"server\",\"code\":40,"
    "\"label\":\"handshake_failure\"}\n"
    "{\"serial\":7,\"summary\":true,\"outcome\":\"fatal\","
    "\"events\":5,\"dropped\":0}\n"
    "{\"serial\":1000,\"track\":1000,\"cycles\":120,\"tick\":0,"
    "\"kind\":\"JobStart\",\"side\":\"engine\",\"code\":3,"
    "\"arg\":50,\"label\":\"decrypt\"}\n"
    "{\"serial\":1000,\"track\":1000,\"cycles\":300,\"tick\":0,"
    "\"kind\":\"JobEnd\",\"side\":\"engine\",\"arg\":180,"
    "\"label\":\"decrypt\"}\n"
    "{\"serial\":1000,\"summary\":true,\"outcome\":\"pool-exit\","
    "\"events\":2,\"dropped\":0}\n";

TEST(AnalysisIngest, JsonlGroupsSessionsAndAppliesSummaries)
{
    Corpus corpus = ingestJsonl(kJsonlFixture);
    EXPECT_EQ(corpus.format, "jsonl");
    EXPECT_EQ(corpus.timeUnit, "cycles");
    ASSERT_EQ(corpus.sessions.size(), 2u);
    EXPECT_EQ(corpus.sessionCount(), 1u); // crypto track excluded

    const SessionRecord &s = corpus.sessions[0];
    EXPECT_EQ(s.serial, 7u);
    EXPECT_EQ(s.outcome, "fatal");
    ASSERT_EQ(s.events.size(), 5u);
    EXPECT_EQ(s.events[0].kind, "ConnOpen");
    EXPECT_EQ(s.events[2].kind, "Park");
    EXPECT_EQ(s.events[2].code, 3u); // JobClass stamp survives
    EXPECT_EQ(s.events[4].kind, "AlertSend");

    const SessionRecord &c = corpus.sessions[1];
    EXPECT_TRUE(c.isCryptoTrack());
    EXPECT_EQ(c.outcome, "pool-exit");
    ASSERT_EQ(c.events.size(), 2u);
    EXPECT_EQ(c.events[0].kind, "JobStart");
    EXPECT_EQ(c.events[0].arg, 50u); // queue wait
}

TEST(AnalysisIngest, MalformedLineRejectsWithLineNumber)
{
    const char *bad =
        "{\"serial\":1,\"track\":0,\"cycles\":1,\"tick\":0,"
        "\"kind\":\"ConnOpen\",\"side\":\"engine\"}\n"
        "this is not json\n";
    try {
        ingestJsonl(bad);
        FAIL() << "expected IngestError";
    } catch (const IngestError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }

    // A structurally valid line missing a required key also names it.
    try {
        ingestJsonl("{\"serial\":1,\"track\":0}\n");
        FAIL() << "expected IngestError";
    } catch (const IngestError &e) {
        EXPECT_NE(std::string(e.what()).find("kind"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Exporter round trip

/** Build one deterministic session + one crypto track. */
void
fillTraces(SessionTrace &session, SessionTrace &crypto)
{
    session.record(TraceEventKind::ConnOpen, obs::traceSideEngine,
                   "clean", 0, 7);
    session.setTick(1);
    session.record(TraceEventKind::StateEnter, obs::traceSideServer,
                   "GetClientHello");
    session.setTick(2);
    session.record(TraceEventKind::Park, obs::traceSideEngine,
                   "rsa_decrypt", 3);
    session.setTick(5);
    session.record(TraceEventKind::Resume, obs::traceSideEngine,
                   "rsa_decrypt", 3);
    session.record(TraceEventKind::Complete, obs::traceSideEngine,
                   "full");
    session.noteOutcome("completed");

    crypto.record(TraceEventKind::JobStart, obs::traceSideEngine,
                  "decrypt", 3, 50);
    crypto.record(TraceEventKind::JobEnd, obs::traceSideEngine,
                  "decrypt", 0, 180);
    crypto.noteOutcome("pool-exit");
}

TEST(AnalysisRoundTrip, JsonlAndChromeIngestToSameHistory)
{
    SessionTrace session(7, 0, 64);
    SessionTrace crypto(1000, obs::cryptoTrackBase, 64);
    fillTraces(session, crypto);

    // JSONL rendering -> ingest.
    char *buf = nullptr;
    size_t len = 0;
    FILE *mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    {
        obs::JsonlTraceSink sink(mem);
        sink.dump(session);
        sink.dump(crypto);
    }
    std::fclose(mem);
    Corpus fromJsonl = ingestJsonl(std::string_view(buf, len));
    std::free(buf);

    // Chrome rendering -> ingest.
    obs::ChromeTraceCollector collector;
    collector.dump(session);
    collector.dump(crypto);
    buf = nullptr;
    mem = open_memstream(&buf, &len);
    ASSERT_NE(mem, nullptr);
    collector.write(mem);
    std::fclose(mem);
    Corpus fromChrome = ingestChrome(parseJson({buf, len}));
    std::free(buf);

    // Same sessions, same outcomes, same event count and ordering.
    ASSERT_EQ(fromJsonl.sessions.size(), fromChrome.sessions.size());
    EXPECT_EQ(fromJsonl.totalEvents(), fromChrome.totalEvents());
    for (size_t s = 0; s < fromJsonl.sessions.size(); ++s) {
        const SessionRecord &a = fromJsonl.sessions[s];
        const SessionRecord &b = fromChrome.sessions[s];
        EXPECT_EQ(a.serial, b.serial);
        EXPECT_EQ(a.track, b.track);
        EXPECT_EQ(a.outcome, b.outcome);
        ASSERT_EQ(a.events.size(), b.events.size());
        for (size_t k = 0; k < a.events.size(); ++k) {
            EXPECT_EQ(a.events[k].kind, b.events[k].kind)
                << "session " << s << " event " << k;
            EXPECT_EQ(a.events[k].label, b.events[k].label);
            EXPECT_EQ(a.events[k].code, b.events[k].code)
                << "session " << s << " event " << k << " ("
                << a.events[k].kind << ")";
        }
    }
}

// ---------------------------------------------------------------------
// Pass determinism

TEST(AnalysisPasses, SameCorpusSameReport)
{
    Corpus corpus = ingestJsonl(kJsonlFixture);
    PassRegistry registry = makeBuiltinRegistry();
    ASSERT_GE(registry.all().size(), 5u);

    auto render = [&] {
        Report report;
        for (const Pass *p : registry.all())
            p->run(corpus, report);
        return report.render();
    };
    const std::string first = render();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, render());

    // The interesting attributions actually appear.
    EXPECT_NE(first.find("park:rsa_decrypt"), std::string::npos);
    EXPECT_NE(first.find("class new_full"), std::string::npos);
    EXPECT_NE(first.find("outcome=fatal"), std::string::npos);
}

// ---------------------------------------------------------------------
// Bench regression diff

TEST(AnalysisDiff, FlagsInjectedGateRegression)
{
    Json oldDoc = parseJson(
        "{\"gate\":{\"pass\":true,\"all_accounted\":true},"
        "\"results\":[{\"goodput\":100.0},{\"goodput\":90.0}]}");
    Json newDoc = parseJson(
        "{\"gate\":{\"pass\":false},"
        "\"results\":[{\"goodput\":40.0},{\"goodput\":89.0}]}");

    Report report;
    DiffResult r = diffBench(oldDoc, newDoc, 25.0, report);
    EXPECT_EQ(r.gateRegressions, 1); // pass true -> false
    EXPECT_EQ(r.missingPaths, 1);    // all_accounted vanished
    EXPECT_EQ(r.numericDeltas, 1);   // -60% goodput; -1.1% is below
    EXPECT_TRUE(r.failed());
    const std::string text = report.render();
    EXPECT_NE(text.find("GATE REGRESSION gate.pass"),
              std::string::npos);
    EXPECT_NE(text.find("MISSING gate.all_accounted"),
              std::string::npos);

    // Identical docs diff clean.
    Report clean;
    DiffResult same = diffBench(oldDoc, oldDoc, 25.0, clean);
    EXPECT_FALSE(same.failed());
    EXPECT_EQ(same.numericDeltas, 0);
}

// ---------------------------------------------------------------------
// Outcome-keyed sampling

TEST(AnalysisSampling, PolicyKeepsFailuresDecaysCompleted)
{
    TraceSampling off{0, false};
    EXPECT_FALSE(off.shouldRecord(0));

    TraceSampling plain{4, false};
    EXPECT_TRUE(plain.shouldRecord(0));
    EXPECT_FALSE(plain.shouldRecord(1));

    TraceSampling keyed{4, true};
    for (uint64_t s = 0; s < 16; ++s) {
        EXPECT_TRUE(keyed.shouldRecord(s));
        EXPECT_TRUE(keyed.shouldDump(s, "fatal"));
        EXPECT_TRUE(keyed.shouldDump(s, "timeout"));
        EXPECT_EQ(keyed.shouldDump(s, "completed"), s % 4 == 0);
    }
    EXPECT_TRUE(TraceSampling::isFailure("peer-fatal"));
    EXPECT_FALSE(TraceSampling::isFailure("completed"));
}

/** Counts dumped traces by outcome. */
struct OutcomeSink final : obs::TraceSink
{
    std::mutex m;
    std::vector<std::pair<uint64_t, std::string>> dumps;

    void
    dump(const SessionTrace &trace) override
    {
        std::lock_guard<std::mutex> lock(m);
        dumps.emplace_back(trace.serial(), trace.outcome());
    }
};

TEST(AnalysisSampling, FailedSessionsSurviveOneInNSampling)
{
    // Half the records corrupted: most sessions die. Under plain 1-in-8
    // sampling nearly all of those deaths would be unobserved; with
    // traceKeepFailures every failure must reach the sink.
    const uint64_t seed = 0xfa11ed;
    ssl::FaultPlan plan;
    plan.corruptRate = 0.5;
    plan.seed = seed;

    OutcomeSink sink;
    serve::ServeConfig cfg;
    cfg.workers = 1;
    cfg.connectionsPerWorker = 32;
    cfg.concurrentPerWorker = 4;
    cfg.certificate = &test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    cfg.seed = seed;
    cfg.faultPlan = &plan;
    cfg.tolerateFailures = true;
    cfg.handshakeDeadlineTicks = 256;
    cfg.idleDeadlineTicks = 256;
    cfg.traceSampleEvery = 8;
    cfg.traceKeepFailures = true;
    cfg.traceSink = &sink;
    serve::ServeEngine engine(std::move(cfg));
    serve::ServeStats stats = engine.run();

    const uint64_t failures =
        stats.failedHandshakes() + stats.timedOutSessions();
    const uint64_t completed =
        stats.fullHandshakes() + stats.resumedHandshakes();
    ASSERT_GT(failures, 0u) << "fault plan produced no failures";

    uint64_t dumpedFailures = 0, dumpedCompleted = 0;
    for (const auto &[serial, outcome] : sink.dumps) {
        if (outcome == "completed")
            ++dumpedCompleted;
        else if (obs::TraceSampling::isFailure(outcome))
            ++dumpedFailures;
    }
    // EVERY failure dumped a trace...
    EXPECT_EQ(dumpedFailures, failures);
    // ...while completed sessions decayed to the 1-in-8 rate (the
    // exact count depends on which serials completed; it can only be
    // a strict subset once more than 8 sessions complete).
    if (completed > 8)
        EXPECT_LT(dumpedCompleted, completed);
    for (const auto &[serial, outcome] : sink.dumps)
        if (outcome == "completed")
            EXPECT_EQ(serial % 8, 0u)
                << "completed serial " << serial
                << " escaped the decay";
}

} // namespace

/**
 * @file
 * Ablation of the paper's Section 6.2 proposal (2) / Figure 5: a
 * hardware unit executing one full AES round (16 table lookups + XOR
 * tree) as a single pipelined operation, exploiting the independence
 * of the four basic ops within a round.
 */

#include <cstdio>

#include "opmix.hh"
#include "perf/ablation.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

int
main()
{
    // Per-block software op mix (one 16-byte block).
    OpMix aes128 = aesMix(16);
    OpMix aes256 = [] {
        OpMix mix;
        mix.bytes = 16;
        Bytes key = benchPayload(32, 31);
        crypto::AesKey ks;
        crypto::aesSetEncryptKey(key.data(), 256, ks);
        Bytes in = benchPayload(16, 32);
        Bytes out(16);
        perf::CountingMeter m;
        crypto::aesEncryptBlockT(ks, in.data(), out.data(), m);
        mix.hist = m.hist;
        return mix;
    }();

    TablePrinter table(
        "Ablation (Sec 6.2(2)/Fig 5): hardware AES round unit "
        "(modelled cycles per block)");
    table.setHeader({"Variant", "software cyc", "hw-unit cyc",
                     "speedup"});
    for (auto [name, mix, rounds] :
         {std::tuple<const char *, OpMix *, int>{"AES-128", &aes128, 9},
          std::tuple<const char *, OpMix *, int>{"AES-256", &aes256,
                                                 13}}) {
        perf::AesUnitAblation r =
            perf::ablateAesRoundUnit(mix->hist, rounds);
        table.addRow({name, perf::fmtF(r.softwareCyclesPerBlock, 1),
                      perf::fmtF(r.hardwareCyclesPerBlock, 1),
                      perf::fmt("%.1fx", r.speedup)});
    }
    table.print();

    std::printf("\nWithin a round the four basic ops are independent "
                "(paper, Fig 5) so the unit runs them in parallel; "
                "rounds remain serialized by data dependence.\n");
    return 0;
}

#include "ssl/session.hh"

#include <chrono>

namespace ssla::ssl
{

uint64_t
SessionCache::now() const
{
    if (clock_)
        return clock_();
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(t).count());
}

void
SessionCache::store(const Session &session)
{
    if (!session.valid())
        return;
    auto it = entries_.find(session.id);
    if (it != entries_.end()) {
        lru_.erase(it->second);
        entries_.erase(it);
    }
    lru_.push_front(Entry{session, now()});
    entries_[session.id] = lru_.begin();
    while (entries_.size() > maxEntries_) {
        entries_.erase(lru_.back().session.id);
        lru_.pop_back();
    }
}

std::optional<Session>
SessionCache::find(const Bytes &id)
{
    auto it = entries_.find(id);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    if (ttlSeconds_ && now() - it->second->storedAt > ttlSeconds_) {
        lru_.erase(it->second);
        entries_.erase(it);
        ++expirations_;
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    // Refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->session;
}

void
SessionCache::remove(const Bytes &id)
{
    auto it = entries_.find(id);
    if (it == entries_.end())
        return;
    lru_.erase(it->second);
    entries_.erase(it);
}

} // namespace ssla::ssl

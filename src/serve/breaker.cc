#include "serve/breaker.hh"

#include "util/cycles.hh"

namespace ssla::serve
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half_open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig cfg) : cfg_(cfg)
{
    if (cfg_.openHoldCycles == 0)
        cfg_.openHoldCycles =
            static_cast<uint64_t>(cycleHz() / 100.0); // ~10 ms
    if (cfg_.tripThreshold == 0)
        cfg_.tripThreshold = 1;
    if (cfg_.closeThreshold == 0)
        cfg_.closeThreshold = 1;
    bindMetrics(nullptr);
}

void
CircuitBreaker::bindMetrics(obs::MetricsRegistry *reg)
{
    obs::MetricsRegistry &r =
        reg ? *reg : obs::MetricsRegistry::global();
    gaugeState_ = r.gauge("serve.breaker_state");
    ctrTrips_ = r.counter("serve.breaker_trips");
    ctrRefusals_ = r.counter("serve.breaker_refusals");
}

void
CircuitBreaker::transitionLocked(BreakerState next, uint64_t now)
{
    if (state_ == next)
        return;
    state_ = next;
    stateCache_.store(static_cast<uint8_t>(next),
                      std::memory_order_release);
    transitions_.fetch_add(1, std::memory_order_relaxed);
    gaugeState_.set(static_cast<int64_t>(next));
    switch (next) {
      case BreakerState::Open:
        openedCycles_ = now;
        trips_.fetch_add(1, std::memory_order_relaxed);
        ctrTrips_.inc();
        break;
      case BreakerState::HalfOpen:
        probesIssued_ = 0;
        probeSuccesses_ = 0;
        break;
      case BreakerState::Closed:
        failStreak_ = 0;
        break;
    }
}

bool
CircuitBreaker::admitFull()
{
    // Fast path: a closed breaker admits without taking the lock.
    if (state() == BreakerState::Closed)
        return true;
    std::lock_guard<std::mutex> lock(m_);
    const uint64_t now = rdcycles();
    if (state_ == BreakerState::Closed)
        return true;
    if (state_ == BreakerState::Open) {
        if (now - openedCycles_ < cfg_.openHoldCycles) {
            refusals_.fetch_add(1, std::memory_order_relaxed);
            ctrRefusals_.inc();
            return false;
        }
        transitionLocked(BreakerState::HalfOpen, now);
    }
    // HalfOpen: admit up to the probe budget, refuse the rest until
    // the probes resolve one way or the other.
    if (probesIssued_ < cfg_.halfOpenProbes) {
        ++probesIssued_;
        return true;
    }
    refusals_.fetch_add(1, std::memory_order_relaxed);
    ctrRefusals_.inc();
    return false;
}

void
CircuitBreaker::noteOverloadFailure()
{
    std::lock_guard<std::mutex> lock(m_);
    const uint64_t now = rdcycles();
    switch (state_) {
      case BreakerState::Closed:
        if (++failStreak_ >= cfg_.tripThreshold)
            transitionLocked(BreakerState::Open, now);
        break;
      case BreakerState::HalfOpen:
        // A probe died: the overload is not over. Re-open (and
        // restart the hold-off clock).
        transitionLocked(BreakerState::Open, now);
        break;
      case BreakerState::Open:
        break;
    }
}

void
CircuitBreaker::noteFullHandshakeSuccess()
{
    std::lock_guard<std::mutex> lock(m_);
    switch (state_) {
      case BreakerState::Closed:
        failStreak_ = 0;
        break;
      case BreakerState::HalfOpen:
        if (++probeSuccesses_ >= cfg_.closeThreshold)
            transitionLocked(BreakerState::Closed, rdcycles());
        break;
      case BreakerState::Open:
        // A full handshake admitted before the trip finishing late;
        // no state change.
        break;
    }
}

} // namespace ssla::serve

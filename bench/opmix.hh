/**
 * @file
 * Builds per-algorithm op-mix histograms from the metered kernels —
 * the shared input of the Table 11 (CPI / path length) and Table 12
 * (instruction mix) reproductions.
 */

#ifndef SSLA_BENCH_OPMIX_HH
#define SSLA_BENCH_OPMIX_HH

#include "bn/kernels.hh"
#include "common.hh"
#include "crypto/aes.hh"
#include "crypto/des.hh"
#include "crypto/md5.hh"
#include "crypto/pkcs1.hh"
#include "crypto/rc4.hh"
#include "crypto/sha1.hh"
#include "perf/probe.hh"
#include "util/endian.hh"

namespace ssla::bench
{

/** An algorithm's op histogram plus the bytes it covers. */
struct OpMix
{
    perf::OpHistogram hist;
    size_t bytes = 0;

    double
    pathLength() const
    {
        return static_cast<double>(hist.total()) / bytes;
    }
};

inline OpMix
aesMix(size_t data_len = 1024)
{
    OpMix mix;
    mix.bytes = data_len;
    Bytes key = benchPayload(16, 1);
    crypto::AesKey ks;
    crypto::aesSetEncryptKey(key.data(), 128, ks);
    Bytes data = benchPayload(data_len, 2);
    Bytes out(data_len);
    perf::CountingMeter m;
    for (size_t off = 0; off < data_len; off += 16)
        crypto::aesEncryptBlockT(ks, data.data() + off,
                                 out.data() + off, m);
    mix.hist = m.hist;
    return mix;
}

inline OpMix
desMix(size_t data_len = 1024, bool triple = false)
{
    OpMix mix;
    mix.bytes = data_len;
    Bytes key = benchPayload(24, 3);
    crypto::DesKeySchedule k1, k2, k3;
    crypto::desSetKey(key.data(), k1);
    crypto::desSetKey(key.data() + 8, k2, true);
    crypto::desSetKey(key.data() + 16, k3);
    Bytes data = benchPayload(data_len, 4);
    perf::CountingMeter m;
    for (size_t off = 0; off < data_len; off += 8) {
        uint64_t b = load64be(data.data() + off);
        b = crypto::desProcessBlockT(b, k1, m);
        if (triple) {
            b = crypto::desProcessBlockT(b, k2, m);
            b = crypto::desProcessBlockT(b, k3, m);
        }
    }
    mix.hist = m.hist;
    return mix;
}

inline OpMix
rc4Mix(size_t data_len = 1024)
{
    OpMix mix;
    mix.bytes = data_len;
    crypto::Rc4 rc4(benchPayload(16, 5));
    Bytes data = benchPayload(data_len, 6);
    Bytes out(data_len);
    perf::CountingMeter m;
    rc4.processT(data.data(), out.data(), data_len, m);
    mix.hist = m.hist;
    return mix;
}

inline OpMix
md5Mix(size_t data_len = 1024)
{
    OpMix mix;
    mix.bytes = data_len;
    Bytes data = benchPayload(data_len, 7);
    crypto::Md5State st{0x67452301u, 0xefcdab89u, 0x98badcfeu,
                        0x10325476u};
    perf::CountingMeter m;
    for (size_t off = 0; off + 64 <= data_len; off += 64)
        crypto::md5BlockT(st, data.data() + off, m);
    mix.hist = m.hist;
    return mix;
}

inline OpMix
sha1Mix(size_t data_len = 1024)
{
    OpMix mix;
    mix.bytes = data_len;
    Bytes data = benchPayload(data_len, 8);
    crypto::Sha1State st{{0x67452301u, 0xefcdab89u, 0x98badcfeu,
                          0x10325476u, 0xc3d2e1f0u}};
    perf::CountingMeter m;
    for (size_t off = 0; off + 64 <= data_len; off += 64)
        crypto::sha1BlockT(st, data.data() + off, m);
    mix.hist = m.hist;
    return mix;
}

/**
 * RSA-1024 decryption op mix: the bignum-kernel call counts come from
 * a fine-grained cycle profile of a real decrypt; each call is then
 * expanded with the metered kernel's per-call op mix at the CRT
 * operand width (16 limbs). Bytes basis: the 128-byte modulus block,
 * as the paper's Table 11 uses.
 */
inline OpMix
rsaMix()
{
    OpMix mix;
    const auto &kp = benchKey(1024);
    mix.bytes = kp.pub.blockLen();

    crypto::RandomPool pool(Bytes{0x11});
    Bytes cipher =
        crypto::rsaPublicEncrypt(kp.pub, Bytes(48, 0x55), pool);
    crypto::rsaPrivateDecrypt(*kp.priv, cipher); // warm-up

    perf::PerfContext ctx(true);
    {
        perf::ContextScope scope(&ctx);
        crypto::rsaPrivateDecrypt(*kp.priv, cipher);
    }

    auto calls = [&](const char *name) -> uint64_t {
        auto it = ctx.counters().find(name);
        return it == ctx.counters().end() ? 0 : it->second.calls;
    };

    constexpr size_t limbs = 16; // 512-bit CRT halves
    bn::Limb r[2 * limbs + 1] = {};
    bn::Limb a[limbs];
    bn::Limb b[limbs];
    for (size_t i = 0; i < limbs; ++i) {
        a[i] = static_cast<bn::Limb>(0x12345u * (i + 3));
        b[i] = static_cast<bn::Limb>(0x54321u * (i + 7));
    }

    perf::CountingMeter muladd, mul, add, sub;
    bn::bnMulAddWordsT(r, a, limbs, 0x7f4a7c15u, muladd);
    bn::bnMulWordsT(r, a, limbs, 0x7f4a7c15u, mul);
    bn::bnAddWordsT(r, a, b, limbs, add);
    bn::bnSubWordsT(r, a, b, limbs, sub);

    auto scaled = [](perf::OpHistogram h, uint64_t n) {
        h.scale(n);
        return h;
    };
    mix.hist.merge(scaled(muladd.hist, calls("bn_mul_add_words")));
    mix.hist.merge(scaled(mul.hist, calls("bn_mul_words")));
    mix.hist.merge(scaled(add.hist, calls("bn_add_words")));
    mix.hist.merge(scaled(sub.hist, calls("bn_sub_words")));

    // Surrounding BN bookkeeping (copies, compares, carry fixups in
    // BN_from_montgomery, push/pop call overhead) — modelled as a
    // per-kernel-call constant, dominated by stack traffic.
    uint64_t total_calls =
        calls("bn_mul_add_words") + calls("bn_mul_words") +
        calls("bn_add_words") + calls("bn_sub_words");
    mix.hist.add(perf::OpClass::MovL, total_calls * 6);
    mix.hist.add(perf::OpClass::Push, total_calls * 2);
    mix.hist.add(perf::OpClass::Pop, total_calls * 2);
    mix.hist.add(perf::OpClass::CmpL, total_calls * 2);
    mix.hist.add(perf::OpClass::Jcc, total_calls);
    mix.hist.add(perf::OpClass::SubL, total_calls * 2);
    mix.hist.add(perf::OpClass::XorL, total_calls);
    return mix;
}

} // namespace ssla::bench

#endif // SSLA_BENCH_OPMIX_HH

/**
 * @file
 * In-memory I/O channels — the "memory buffers" the paper's standalone
 * ssltest setup relays messages through (Section 3.2).
 *
 * A BioPair is two byte queues; each endpoint writes into one and
 * reads from the other, so a client and a server context in the same
 * process can complete a handshake with no sockets involved.
 */

#ifndef SSLA_SSL_BIO_HH
#define SSLA_SSL_BIO_HH

#include <cstdint>

#include "util/types.hh"

namespace ssla::ssl
{

/** A FIFO byte queue with peeking and lazy compaction. */
class MemBio
{
  public:
    /** Append @p len bytes. */
    void write(const uint8_t *data, size_t len);
    void write(const Bytes &data) { write(data.data(), data.size()); }

    /** Consume up to @p len bytes; returns the number read. */
    size_t read(uint8_t *out, size_t len);

    /** Copy up to @p len bytes without consuming; returns the count. */
    size_t peek(uint8_t *out, size_t len) const;

    /** Discard @p len buffered bytes (after a successful peek). */
    void consume(size_t len);

    /** Bytes currently buffered. */
    size_t available() const { return buf_.size() - head_; }

    /** Total bytes ever written (traffic accounting for the web sim). */
    uint64_t totalWritten() const { return totalWritten_; }

  private:
    void compact();

    Bytes buf_;
    size_t head_ = 0;
    uint64_t totalWritten_ = 0;
};

/** One side's view of a BioPair: read from one queue, write the other. */
class BioEndpoint
{
  public:
    BioEndpoint() = default;
    BioEndpoint(MemBio *in, MemBio *out) : in_(in), out_(out) {}

    void write(const uint8_t *data, size_t len);
    void write(const Bytes &data) { write(data.data(), data.size()); }
    size_t read(uint8_t *out, size_t len) { return in_->read(out, len); }
    size_t peek(uint8_t *out, size_t len) const
    {
        return in_->peek(out, len);
    }
    void consume(size_t len) { in_->consume(len); }
    size_t available() const { return in_->available(); }

    /**
     * Flush buffered output (a no-op for memory queues, but probed as
     * BIO_flush so the handshake anatomy shows the same buffer-control
     * entries as the paper's Table 2).
     */
    void flush();

  private:
    MemBio *in_ = nullptr;
    MemBio *out_ = nullptr;
};

/** A connected pair of byte queues. */
class BioPair
{
  public:
    /** The client's endpoint. */
    BioEndpoint clientEnd() { return BioEndpoint(&serverToClient_, &clientToServer_); }

    /** The server's endpoint. */
    BioEndpoint serverEnd() { return BioEndpoint(&clientToServer_, &serverToClient_); }

    /** Bytes the client has sent (wire-traffic accounting). */
    uint64_t clientBytesSent() const
    {
        return clientToServer_.totalWritten();
    }

    /** Bytes the server has sent. */
    uint64_t serverBytesSent() const
    {
        return serverToClient_.totalWritten();
    }

  private:
    MemBio clientToServer_;
    MemBio serverToClient_;
};

} // namespace ssla::ssl

#endif // SSLA_SSL_BIO_HH

/**
 * @file
 * Reproduces Table 5: AES block-operation breakdown into its three
 * parts (map+initial round key / main rounds / last round+map out)
 * for 128-bit and 256-bit keys.
 *
 * Each part runs in a timed batch so per-part costs are resolvable
 * despite a single block op being far below timer resolution.
 */

#include <cstdio>

#include "common.hh"
#include "crypto/aes.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

namespace
{

constexpr int iters = 20000;

struct Breakdown
{
    double part1, part2, part3;
    uint32_t checksum; ///< keeps the measurement chains live
};

Breakdown
measure(unsigned bits)
{
    Bytes key = bench::benchPayload(bits / 8, bits);
    AesKey ks;
    aesSetEncryptKey(key.data(), bits, ks);
    Bytes in = bench::benchPayload(16, 7);
    perf::NullMeter m;

    uint32_t s[4];
    uint8_t out[16];
    aesLoadState(in.data(), ks.rk, s, m); // prime the state

    Breakdown b;
    // Each batch is dependency-chained (the output feeds the next
    // input) so out-of-order overlap across iterations cannot hide
    // the part's latency.
    Bytes in_mut = in;
    b.part1 = bench::cyclesPerCall(
        [&] {
            aesLoadState(in_mut.data(), ks.rk, s, m);
            in_mut[0] ^= static_cast<uint8_t>(s[3]);
        },
        iters);
    b.part2 = bench::cyclesPerCall([&] { aesMainRoundsEnc(ks, s, m); },
                                   iters);
    b.part3 = bench::cyclesPerCall(
        [&] {
            aesFinalRoundEnc(ks, s, out, m);
            s[0] ^= out[0];
        },
        iters);
    b.checksum = s[0] ^ s[1] ^ s[2] ^ s[3];
    return b;
}

} // anonymous namespace

int
main()
{
    bench::warmUpCpu();
    Breakdown k128 = measure(128);
    Breakdown k256 = measure(256);

    double t128 = k128.part1 + k128.part2 + k128.part3;
    double t256 = k256.part1 + k256.part2 + k256.part3;

    TablePrinter table(
        "Table 5: AES execution time breakdown (cycles per block op)");
    table.setHeader({"Step", "Functionality", "128b cyc", "128b %",
                     "paper %", "256b cyc", "256b %", "paper %"});
    table.addRow({"1", "map block to state, add initial round key",
                  perf::fmtF(k128.part1, 1),
                  perf::fmtPct(100 * k128.part1 / t128), "12",
                  perf::fmtF(k256.part1, 1),
                  perf::fmtPct(100 * k256.part1 / t256), "9"});
    table.addRow({"2", "main rounds", perf::fmtF(k128.part2, 1),
                  perf::fmtPct(100 * k128.part2 / t128), "71",
                  perf::fmtF(k256.part2, 1),
                  perf::fmtPct(100 * k256.part2 / t256), "78"});
    table.addRow({"3", "last round, map state to block",
                  perf::fmtF(k128.part3, 1),
                  perf::fmtPct(100 * k128.part3 / t128), "17",
                  perf::fmtF(k256.part3, 1),
                  perf::fmtPct(100 * k256.part3 / t256), "13"});
    table.addRule();
    table.addRow({"", "Total", perf::fmtF(t128, 1), "100%", "100",
                  perf::fmtF(t256, 1), "100%", "100"});
    table.print();

    std::printf("\npaper totals: 562 cycles (128b), 747 cycles (256b) "
                "on a 2.26GHz Pentium 4\n");
    std::printf("(checksums %08x %08x)\n", k128.checksum,
                k256.checksum);
    return 0;
}

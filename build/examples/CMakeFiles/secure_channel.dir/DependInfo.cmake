
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_channel.cpp" "examples/CMakeFiles/secure_channel.dir/secure_channel.cpp.o" "gcc" "examples/CMakeFiles/secure_channel.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/ssla_web.dir/DependInfo.cmake"
  "/root/repo/build/src/ssl/CMakeFiles/ssla_ssl.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/ssla_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ssla_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bn/CMakeFiles/ssla_bn.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/ssla_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "pki/der.hh"

#include <stdexcept>

#include "util/bytes.hh"

namespace ssla::pki
{

namespace
{

/** Encode a definite length in DER's minimal form. */
void
appendLength(Bytes &out, size_t len)
{
    if (len < 0x80) {
        out.push_back(static_cast<uint8_t>(len));
        return;
    }
    uint8_t tmp[8];
    int n = 0;
    size_t v = len;
    while (v) {
        tmp[n++] = static_cast<uint8_t>(v);
        v >>= 8;
    }
    out.push_back(static_cast<uint8_t>(0x80 | n));
    for (int i = n - 1; i >= 0; --i)
        out.push_back(tmp[i]);
}

} // anonymous namespace

Bytes
derWrap(DerTag tag, const Bytes &content)
{
    Bytes out;
    out.reserve(content.size() + 6);
    out.push_back(static_cast<uint8_t>(tag));
    appendLength(out, content.size());
    append(out, content);
    return out;
}

Bytes
derInteger(const bn::BigNum &v)
{
    if (v.isNegative())
        throw std::invalid_argument("derInteger: negative unsupported");
    Bytes mag = v.toBytesBE();
    if (mag.empty())
        mag.push_back(0);
    // A set top bit would read as negative; prepend a zero octet.
    if (mag[0] & 0x80)
        mag.insert(mag.begin(), 0);
    return derWrap(DerTag::Integer, mag);
}

Bytes
derInteger(uint64_t v)
{
    return derInteger(bn::BigNum(v));
}

Bytes
derOctetString(const Bytes &v)
{
    return derWrap(DerTag::OctetString, v);
}

Bytes
derUtf8(std::string_view s)
{
    return derWrap(DerTag::Utf8String, toBytes(s));
}

Bytes
derSequence(const std::vector<Bytes> &elements)
{
    Bytes content;
    for (const auto &e : elements)
        append(content, e);
    return derWrap(DerTag::Sequence, content);
}

void
DerParser::require(size_t n) const
{
    if (len_ - pos_ < n)
        throw std::runtime_error("DER: truncated input");
}

uint8_t
DerParser::peekTag() const
{
    require(1);
    return data_[pos_];
}

size_t
DerParser::readLength()
{
    require(1);
    uint8_t first = data_[pos_++];
    if (!(first & 0x80))
        return first;
    unsigned nbytes = first & 0x7f;
    if (nbytes == 0 || nbytes > 8)
        throw std::runtime_error("DER: unsupported length form");
    require(nbytes);
    size_t len = 0;
    for (unsigned i = 0; i < nbytes; ++i)
        len = (len << 8) | data_[pos_++];
    return len;
}

Bytes
DerParser::expect(DerTag tag)
{
    require(1);
    if (data_[pos_] != static_cast<uint8_t>(tag))
        throw std::runtime_error("DER: unexpected tag");
    ++pos_;
    size_t len = readLength();
    require(len);
    Bytes content(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return content;
}

bn::BigNum
DerParser::readInteger()
{
    Bytes content = expect(DerTag::Integer);
    if (content.empty())
        throw std::runtime_error("DER: empty integer");
    if (content[0] & 0x80)
        throw std::runtime_error("DER: negative integer unsupported");
    return bn::BigNum::fromBytesBE(content);
}

uint64_t
DerParser::readSmallInteger()
{
    bn::BigNum v = readInteger();
    if (v.bitLength() > 64)
        throw std::runtime_error("DER: integer too large");
    Bytes b = v.toBytesBE(8);
    uint64_t out = 0;
    for (uint8_t byte : b)
        out = (out << 8) | byte;
    return out;
}

Bytes
DerParser::readOctetString()
{
    return expect(DerTag::OctetString);
}

std::string
DerParser::readUtf8()
{
    return toString(expect(DerTag::Utf8String));
}

Bytes
DerParser::readSequence()
{
    return expect(DerTag::Sequence);
}

} // namespace ssla::pki

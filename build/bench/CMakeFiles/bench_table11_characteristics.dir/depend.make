# Empty dependencies file for bench_table11_characteristics.
# This may be replaced when dependencies are built.

/**
 * @file
 * Arbitrary-precision signed integers on 32-bit limbs.
 *
 * This is the substrate under RSA (src/crypto/rsa.*) and the PKI layer.
 * The representation mirrors OpenSSL's BIGNUM as the paper profiled it:
 * little-endian arrays of 32-bit limbs, sign-magnitude, with the word
 * kernels of bn/kernels.hh doing the inner loops so that fine-grained
 * profiling (Table 8) attributes time the way the paper's did.
 */

#ifndef SSLA_BN_BIGNUM_HH
#define SSLA_BN_BIGNUM_HH

#include <string>
#include <string_view>
#include <vector>

#include "bn/kernels.hh"
#include "util/types.hh"

namespace ssla::bn
{

/** A signed arbitrary-precision integer. */
class BigNum
{
  public:
    /** Construct zero. */
    BigNum() = default;

    /** Construct from an unsigned 64-bit value. */
    BigNum(uint64_t v); // NOLINT: implicit by design (literals)

    /** Construct from a signed value. */
    static BigNum fromInt(int64_t v);

    /** Parse a big-endian byte string (as SSL wire format uses). */
    static BigNum fromBytesBE(const uint8_t *data, size_t len);
    static BigNum fromBytesBE(const Bytes &data);

    /** Parse a hex string (optionally "-" prefixed). */
    static BigNum fromHex(std::string_view hex);

    /** Parse a decimal string (optionally "-" prefixed). */
    static BigNum fromDecimal(std::string_view dec);

    /**
     * Serialize the magnitude as a big-endian byte string.
     *
     * With @p width == 0 the minimal length is used (empty for zero);
     * otherwise the output is left-padded with zeros to exactly
     * @p width bytes (throws std::length_error if it does not fit).
     */
    Bytes toBytesBE(size_t width = 0) const;

    /** Lower-case hex rendering of the value ("0" for zero). */
    std::string toHex() const;

    /** Decimal rendering of the value. */
    std::string toDecimal() const;

    bool isZero() const { return limbs_.empty(); }
    bool isOne() const;
    bool isOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
    bool isNegative() const { return neg_; }

    /** Number of significant bits of the magnitude (0 for zero). */
    size_t bitLength() const;

    /** Number of bytes needed to hold the magnitude. */
    size_t byteLength() const { return (bitLength() + 7) / 8; }

    /** Test magnitude bit @p i (LSB is bit 0). */
    bool testBit(size_t i) const;

    /** Set magnitude bit @p i. */
    void setBit(size_t i);

    /** Low 32 bits of the magnitude. */
    Limb loWord() const { return limbs_.empty() ? 0 : limbs_[0]; }

    /** Three-way comparison: -1, 0, +1. */
    int cmp(const BigNum &other) const;

    /** Three-way comparison of magnitudes. */
    int cmpAbs(const BigNum &other) const;

    bool operator==(const BigNum &o) const { return cmp(o) == 0; }
    bool operator!=(const BigNum &o) const { return cmp(o) != 0; }
    bool operator<(const BigNum &o) const { return cmp(o) < 0; }
    bool operator<=(const BigNum &o) const { return cmp(o) <= 0; }
    bool operator>(const BigNum &o) const { return cmp(o) > 0; }
    bool operator>=(const BigNum &o) const { return cmp(o) >= 0; }

    BigNum operator+(const BigNum &o) const;
    BigNum operator-(const BigNum &o) const;
    BigNum operator*(const BigNum &o) const;
    /** Truncated (C-style) quotient. */
    BigNum operator/(const BigNum &o) const;
    /** C-style remainder (sign follows the dividend). */
    BigNum operator%(const BigNum &o) const;
    BigNum operator-() const;

    BigNum &operator+=(const BigNum &o) { return *this = *this + o; }
    BigNum &operator-=(const BigNum &o) { return *this = *this - o; }
    BigNum &operator*=(const BigNum &o) { return *this = *this * o; }

    /** Squaring (specialized multiply; OpenSSL's BN_sqr). */
    BigNum sqr() const;

    /** Shift the magnitude left by @p bits. */
    BigNum shiftLeft(size_t bits) const;

    /** Shift the magnitude right by @p bits (arithmetic on magnitude). */
    BigNum shiftRight(size_t bits) const;

    /**
     * Quotient and remainder in one division (Knuth algorithm D).
     * Signs are C-style: q truncates toward zero, r follows a.
     */
    static void divMod(const BigNum &a, const BigNum &b, BigNum &q,
                       BigNum &r);

    /** Non-negative residue in [0, m); @p m must be positive. */
    BigNum mod(const BigNum &m) const;

    /** (a + b) mod m on non-negative inputs. */
    static BigNum modAdd(const BigNum &a, const BigNum &b,
                         const BigNum &m);

    /** (a - b) mod m on non-negative inputs. */
    static BigNum modSub(const BigNum &a, const BigNum &b,
                         const BigNum &m);

    /** (a * b) mod m. */
    static BigNum modMul(const BigNum &a, const BigNum &b,
                         const BigNum &m);

    /** Greatest common divisor of magnitudes. */
    static BigNum gcd(const BigNum &a, const BigNum &b);

    /**
     * Multiplicative inverse of @p a modulo @p m.
     * @throws std::domain_error when gcd(a, m) != 1.
     */
    static BigNum modInverse(const BigNum &a, const BigNum &m);

    /** Direct access to the limb array (little-endian). */
    const std::vector<Limb> &limbs() const { return limbs_; }

    /** Number of limbs in the magnitude. */
    size_t size() const { return limbs_.size(); }

    /**
     * Build from a raw limb vector (takes ownership, normalizes).
     * Primarily for the Montgomery layer.
     */
    static BigNum fromLimbs(std::vector<Limb> limbs, bool negative = false);

  private:
    /** Strip high zero limbs; canonicalize -0 to +0. */
    void normalize();

    static std::vector<Limb> addAbs(const std::vector<Limb> &a,
                                    const std::vector<Limb> &b);
    /** |a| - |b| assuming |a| >= |b|. */
    static std::vector<Limb> subAbs(const std::vector<Limb> &a,
                                    const std::vector<Limb> &b);
    static int cmpAbsRaw(const std::vector<Limb> &a,
                         const std::vector<Limb> &b);

    std::vector<Limb> limbs_; ///< magnitude, least-significant first
    bool neg_ = false;        ///< sign (false for zero)
};

} // namespace ssla::bn

#endif // SSLA_BN_BIGNUM_HH

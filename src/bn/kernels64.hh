/**
 * @file
 * 64-bit-limb bignum kernels — the modern counterpart to kernels.hh.
 *
 * The paper's core (kernels.hh) deliberately uses 32-bit limbs with
 * 64-bit intermediates, matching OpenSSL 0.9.7d on the Pentium 4 so
 * the Table 8/9 anatomy reproduces. This file is the other arm of the
 * A/B: 64-bit limbs with 128-bit intermediates (`unsigned __int128`),
 * the configuration every x86-64/aarch64 OpenSSL build has used since.
 * Each doubling of the limb width quarters the number of widening
 * multiplies in an n-bit product, so the same RSA-1024 operation runs
 * the bn_mul_add_words body 4x fewer times — before Karatsuba.
 *
 * Above `karatsubaThreshold` limbs, bn64Mul/bn64Sqr switch from the
 * schoolbook product to Karatsuba recursion (3 half-size products
 * instead of 4), which the 32-bit paper core intentionally omits.
 *
 * Kernels exist in two forms, mirroring kernels.hh: a Meter-policy
 * template (for the instruction-mix study — the OpClass counts here
 * describe the x86-64 movq/mulq/addq/adcq body, one op per 64-bit
 * word) and a plain probed production function. Probe names carry a
 * "bn64_" prefix so the paper-era Table 8 rows stay uncontaminated.
 */

#ifndef SSLA_BN_KERNELS64_HH
#define SSLA_BN_KERNELS64_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perf/opcount.hh"

namespace ssla::bn
{

/** One machine word of the 64-bit engine (x86-64 BN_ULONG). */
using Limb64 = uint64_t;
/** Double-width intermediate (no BN_ULLONG in 0.9.7d — gcc __int128). */
using DLimb64 = unsigned __int128;

constexpr unsigned limb64Bits = 64;

/**
 * Schoolbook/Karatsuba crossover, in 64-bit limbs (16 limbs = 1024
 * bits). Below this the O(n^2) inner loop wins on carry locality; at
 * and above it the 3-multiplies-of-half-size recursion wins. RSA-1024
 * CRT halves (8 limbs) stay schoolbook; RSA-2048 modexp (32 limbs)
 * recurses one level. Tuned on the container's x86-64; test_bn64
 * exercises n, n-1 and n+1 around this value so a retune cannot
 * silently break the seam.
 */
constexpr size_t karatsubaThreshold = 16;

/**
 * r[0..n) += a[0..n) * w; returns the carry limb.
 *
 * Same shape as the paper's hot loop (Table 9), one op per 64-bit
 * word: movq a[i] / mulq w / addq carry / adcq $0 / addq r[i] /
 * adcq $0 / movq ->r[i] / movq rdx->carry.
 */
template <class Meter>
Limb64
bn64MulAddWordsT(Limb64 *r, const Limb64 *a, size_t n, Limb64 w, Meter &m)
{
    Limb64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb64 t = static_cast<DLimb64>(a[i]) * w + carry + r[i];
        r[i] = static_cast<Limb64>(t);
        carry = static_cast<Limb64>(t >> limb64Bits);
        if constexpr (Meter::counting) {
            // Same mnemonic classes as the 32-bit body; each op is the
            // 64-bit form and retires 64 bits of work instead of 32.
            m.count(perf::OpClass::MovL, 4);
            m.count(perf::OpClass::MulL, 1);
            m.count(perf::OpClass::AddL, 2);
            m.count(perf::OpClass::AdcL, 2);
        }
    }
    if constexpr (Meter::counting) {
        // 4x-unrolled loop: control overhead amortized over 4 words.
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) * w; returns the carry limb. */
template <class Meter>
Limb64
bn64MulWordsT(Limb64 *r, const Limb64 *a, size_t n, Limb64 w, Meter &m)
{
    Limb64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb64 t = static_cast<DLimb64>(a[i]) * w + carry;
        r[i] = static_cast<Limb64>(t);
        carry = static_cast<Limb64>(t >> limb64Bits);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::MulL, 1);
            m.count(perf::OpClass::AddL, 1);
            m.count(perf::OpClass::AdcL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) + b[0..n); returns the carry bit. r may alias a. */
template <class Meter>
Limb64
bn64AddWordsT(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n,
              Meter &m)
{
    Limb64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb64 t = static_cast<DLimb64>(a[i]) + b[i] + carry;
        r[i] = static_cast<Limb64>(t);
        carry = static_cast<Limb64>(t >> limb64Bits);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::AddL, 1);
            m.count(perf::OpClass::AdcL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return carry;
}

/** r[0..n) = a[0..n) - b[0..n); returns the borrow bit. r may alias a. */
template <class Meter>
Limb64
bn64SubWordsT(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n,
              Meter &m)
{
    Limb64 borrow = 0;
    for (size_t i = 0; i < n; ++i) {
        DLimb64 t = static_cast<DLimb64>(a[i]) - b[i] - borrow;
        r[i] = static_cast<Limb64>(t);
        borrow = static_cast<Limb64>((t >> limb64Bits) & 1);
        if constexpr (Meter::counting) {
            m.count(perf::OpClass::MovL, 3);
            m.count(perf::OpClass::SubL, 1);
            m.count(perf::OpClass::SbbL, 1);
        }
    }
    if constexpr (Meter::counting) {
        m.count(perf::OpClass::AddL, (n + 3) / 4);
        m.count(perf::OpClass::CmpL, (n + 3) / 4);
        m.count(perf::OpClass::Jcc, (n + 3) / 4);
    }
    return borrow;
}

// Production entry points (NullMeter instantiations with Fine probes;
// probe names carry the bn64_ prefix to keep Table 8 rows separate).

/** r += a * w over n words; see bn64MulAddWordsT. */
Limb64 bn64_mul_add_words(Limb64 *r, const Limb64 *a, size_t n, Limb64 w);
/** r = a * w over n words. */
Limb64 bn64_mul_words(Limb64 *r, const Limb64 *a, size_t n, Limb64 w);
/** r = a + b over n words; returns carry. r may alias a. */
Limb64 bn64_add_words(Limb64 *r, const Limb64 *a, const Limb64 *b,
                      size_t n);
/** r = a - b over n words; returns borrow. r may alias a. */
Limb64 bn64_sub_words(Limb64 *r, const Limb64 *a, const Limb64 *b,
                      size_t n);

// Multi-word products (the Karatsuba layer; the 32-bit core has no
// equivalent — BigNum::operator* is schoolbook-only by design).

/**
 * Full product r[0..2n) = a[0..n) * b[0..n); equal-width operands.
 * Schoolbook below karatsubaThreshold, Karatsuba recursion at and
 * above it. r may not alias a or b.
 */
void bn64Mul(Limb64 *r, const Limb64 *a, const Limb64 *b, size_t n);

/**
 * Full square r[0..2n) = a[0..n)^2, with the same threshold split.
 * r may not alias a.
 */
void bn64Sqr(Limb64 *r, const Limb64 *a, size_t n);

// Limb-width conversions between the two engines' representations.
// Both sides are little-endian; a 64-bit limb packs two 32-bit limbs.

/** Repack 32-bit limbs into 64-bit limbs (minimal length, no pad). */
std::vector<Limb64> limbs64From32(const std::vector<uint32_t> &a);

/** Repack 64-bit limbs into 32-bit limbs (minimal length, no pad). */
std::vector<uint32_t> limbs32From64(const std::vector<Limb64> &a);

} // namespace ssla::bn

#endif // SSLA_BN_KERNELS64_HH

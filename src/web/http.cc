#include "web/http.hh"

#include <stdexcept>

#include "util/bytes.hh"

namespace ssla::web
{

namespace
{

/** Split header lines out of a CRLF-delimited head section. */
void
parseHeaders(const std::string &head, size_t start,
             std::map<std::string, std::string> &out)
{
    size_t pos = start;
    while (pos < head.size()) {
        size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos)
            eol = head.size();
        std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty())
            break;
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            throw std::runtime_error("http: malformed header line");
        std::string name = line.substr(0, colon);
        size_t vstart = colon + 1;
        while (vstart < line.size() && line[vstart] == ' ')
            ++vstart;
        out[name] = line.substr(vstart);
    }
}

} // anonymous namespace

Bytes
HttpRequest::encode() const
{
    std::string out = method + " " + path + " " + version + "\r\n";
    for (const auto &[name, value] : headers)
        out += name + ": " + value + "\r\n";
    out += "\r\n";
    return toBytes(out);
}

HttpRequest
HttpRequest::parse(const Bytes &wire)
{
    std::string text = toString(wire);
    size_t eol = text.find("\r\n");
    if (eol == std::string::npos)
        throw std::runtime_error("http: truncated request line");
    std::string line = text.substr(0, eol);

    HttpRequest req;
    size_t sp1 = line.find(' ');
    size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
        throw std::runtime_error("http: malformed request line");
    req.method = line.substr(0, sp1);
    req.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = line.substr(sp2 + 1);
    parseHeaders(text, eol + 2, req.headers);
    return req;
}

Bytes
HttpResponse::encode() const
{
    std::string head = "HTTP/1.0 " + std::to_string(status) + " " +
                       reason + "\r\n";
    auto hdrs = headers;
    hdrs["Content-Length"] = std::to_string(body.size());
    for (const auto &[name, value] : hdrs)
        head += name + ": " + value + "\r\n";
    head += "\r\n";
    Bytes out = toBytes(head);
    append(out, body);
    return out;
}

HttpResponse
HttpResponse::parse(const Bytes &wire)
{
    std::string text = toString(wire);
    size_t head_end = text.find("\r\n\r\n");
    if (head_end == std::string::npos)
        throw std::runtime_error("http: truncated response head");

    HttpResponse resp;
    size_t eol = text.find("\r\n");
    std::string status_line = text.substr(0, eol);
    size_t sp1 = status_line.find(' ');
    if (sp1 == std::string::npos)
        throw std::runtime_error("http: malformed status line");
    resp.status = std::stoi(status_line.substr(sp1 + 1));
    size_t sp2 = status_line.find(' ', sp1 + 1);
    if (sp2 != std::string::npos)
        resp.reason = status_line.substr(sp2 + 1);
    parseHeaders(text, eol + 2, resp.headers);

    resp.body.assign(wire.begin() + head_end + 4, wire.end());
    auto it = resp.headers.find("Content-Length");
    if (it != resp.headers.end()) {
        size_t want = std::stoul(it->second);
        if (resp.body.size() < want)
            throw std::runtime_error("http: truncated body");
        resp.body.resize(want);
    }
    return resp;
}

} // namespace ssla::web

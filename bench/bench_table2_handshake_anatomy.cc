/**
 * @file
 * Reproduces Table 2: the ten-step anatomy of the server-side SSL
 * handshake with per-step latencies and the latencies of the crypto
 * functions each step calls.
 */

#include <cstdio>
#include <memory>

#include "common.hh"
#include "perf/probe.hh"
#include "perf/report.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"

using namespace ssla;
using namespace ssla::ssl;
using perf::TablePrinter;

namespace
{

/** Run @p n instrumented handshakes, merging server-side counters. */
perf::PerfContext
profileHandshakes(int n)
{
    perf::PerfContext ctx;

    const auto &key = bench::benchKey(1024);
    pki::CertificateInfo info;
    info.serial = 1;
    info.issuer = "Bench CA";
    info.subject = "bench.server";
    info.notBefore = 0;
    info.notAfter = ~uint64_t(0);
    info.publicKey = key.pub;
    pki::Certificate cert = pki::Certificate::issue(info, *key.priv);

    for (int i = 0; i < n; ++i) {
        BioPair wires;
        ServerConfig scfg;
        scfg.certificate = cert;
        scfg.privateKey = key.priv;

        std::unique_ptr<SslServer> server;
        {
            perf::ContextScope scope(&ctx);
            server =
                std::make_unique<SslServer>(scfg, wires.serverEnd());
        }
        SslClient client(ClientConfig{}, wires.clientEnd());
        while (!client.handshakeDone() || !server->handshakeDone()) {
            bool progress = client.advance();
            {
                perf::ContextScope scope(&ctx);
                progress |= server->advance();
            }
            if (!progress)
                throw std::runtime_error("handshake deadlock");
        }
    }
    return ctx;
}

struct StepRow
{
    const char *step;
    const char *functionality;
    const char *probe;
    const char *crypto_called;
    double paper_kcycles;
};

} // anonymous namespace

int
main()
{
    constexpr int runs = 50;
    // Warm-up pass so lazy tables/keys are built outside the profile.
    profileHandshakes(2);
    perf::PerfContext ctx = profileHandshakes(runs);

    auto kc = [&](const char *name) {
        return static_cast<double>(ctx.cyclesFor(name)) / runs / 1e3;
    };

    const StepRow steps[] = {
        {"0", "Init", "step0_init", "init_finished_mac", 348},
        {"1", "get_client_hello", "step1_get_client_hello",
         "rand_pseudo_bytes, finish_mac", 198},
        {"2", "send_server_hello", "step2_send_server_hello",
         "rand_pseudo_bytes, finish_mac", 61},
        {"3", "send_server_cert", "step3_send_server_cert",
         "X509 functions, finish_mac", 239},
        {"4", "send_server_done", "step4_send_server_done",
         "finish_mac, BIO_flush", 4.5},
        {"5", "get_client_kx", "step5_get_client_kx",
         "rsa_private_decryption, gen_master_secret", 18941},
        {"6", "get_finished", "step6_get_finished",
         "gen_key_block, final_finish_mac, pri_decryption, mac", 287},
        {"7", "send_cipher_spec", "step7_send_cipher_spec", "", 0.74},
        {"8", "send_finished", "step8_send_finished",
         "final_finish_mac, mac, pri_encryption", 114},
        {"9", "server_flush; end", "step9_flush", "BIO_flush", 2.5},
    };

    TablePrinter table(
        "Table 2: Execution time breakdown in SSL handshake "
        "(server side, RSA-1024, DES-CBC3-SHA; kcycles, avg of 50)");
    table.setHeader({"Step", "Functionality", "kcycles",
                     "paper kcycles", "Crypto functions called"});
    double total = 0;
    for (const auto &s : steps) {
        double v = kc(s.probe);
        total += v;
        table.addRow({s.step, s.functionality, perf::fmtF(v, 1),
                      perf::fmtF(s.paper_kcycles, 1), s.crypto_called});
    }
    table.addRule();
    table.addRow({"", "Total", perf::fmtF(total, 1), "20540", ""});
    table.print();

    TablePrinter crypto_table(
        "Table 2 (crypto function latencies, kcycles per handshake)");
    crypto_table.setHeader({"Crypto function", "kcycles", "calls"});
    const char *funcs[] = {
        "init_finished_mac", "rand_pseudo_bytes", "finish_mac",
        "x509_issue", "rsa_private_decryption", "gen_master_secret",
        "gen_key_block", "final_finish_mac", "pri_decryption", "mac",
        "pri_encryption", "BIO_flush", "rsa_computation", "blinding",
    };
    for (const char *f : funcs) {
        auto it = ctx.counters().find(f);
        if (it == ctx.counters().end())
            continue;
        crypto_table.addRow(
            {f, perf::fmtF(static_cast<double>(it->second.inclusive) /
                           runs / 1e3, 1),
             perf::fmt("%.1f", static_cast<double>(it->second.calls) /
                       runs)});
    }
    crypto_table.print();
    return 0;
}

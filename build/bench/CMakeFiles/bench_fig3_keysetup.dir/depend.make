# Empty dependencies file for bench_fig3_keysetup.
# This may be replaced when dependencies are built.

/**
 * @file
 * Ablation of the paper's Section 6.2 proposal (1) / Figure 4: ISA
 * support for 3-input logical operations in MD5 and SHA-1.
 *
 * Per 64-byte block: MD5 runs 48 steps whose round function chains two
 * dependent logicals (F, G, I) and 16 single-chain steps (H); SHA-1
 * runs 40 such steps (Ch, Maj) out of 80. Each fused step also saves
 * one register-pressure movl on x86-32.
 */

#include <cstdio>

#include "opmix.hh"
#include "perf/ablation.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::bench;
using perf::TablePrinter;

int
main()
{
    // Per-block histograms (1024 bytes = 16 blocks; normalize later).
    OpMix md5 = md5Mix(1024);
    OpMix sha1 = sha1Mix(1024);
    constexpr uint64_t blocks = 1024 / 64;

    // Fusable pairs and spill savings per the kernel structure.
    perf::IsaAblation md5_result = perf::ablateThreeOperandLogicals(
        md5.hist, 48 * blocks, 48 * blocks);
    perf::IsaAblation sha1_result = perf::ablateThreeOperandLogicals(
        sha1.hist, 40 * blocks, 40 * blocks);

    TablePrinter table(
        "Ablation (Sec 6.2(1)/Fig 4): 3-operand logical ISA support "
        "for the hash kernels (modelled, per 1KB)");
    table.setHeader({"Hash", "ops before", "ops after", "CPI before",
                     "CPI after", "cycle speedup"});
    auto add = [&](const char *name, const perf::IsaAblation &r) {
        table.addRow({name, perf::fmtCount(r.baseline.total()),
                      perf::fmtCount(r.withIsa.total()),
                      perf::fmtF(r.cpiBaseline.cpi, 2),
                      perf::fmtF(r.cpiWithIsa.cpi, 2),
                      perf::fmt("%.2fx", r.speedup)});
    };
    add("MD5", md5_result);
    add("SHA-1", sha1_result);
    table.print();

    std::printf("\nThe paper proposes this qualitatively; the model "
                "quantifies the path-length reduction from fusing the "
                "F/G/I (MD5) and Ch/Maj (SHA-1) logical chains.\n");
    return 0;
}

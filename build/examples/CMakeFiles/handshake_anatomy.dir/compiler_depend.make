# Empty compiler generated dependencies file for handshake_anatomy.
# This may be replaced when dependencies are built.

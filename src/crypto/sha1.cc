#include "crypto/sha1.hh"

#include <cstring>

namespace ssla::crypto
{

namespace
{
perf::NullMeter nullMeter;
} // anonymous namespace

void
Sha1::init()
{
    state_.h[0] = 0x67452301u;
    state_.h[1] = 0xefcdab89u;
    state_.h[2] = 0x98badcfeu;
    state_.h[3] = 0x10325476u;
    state_.h[4] = 0xc3d2e1f0u;
    totalLen_ = 0;
    bufferLen_ = 0;
}

void
Sha1::update(const uint8_t *data, size_t len)
{
    if (!len)
        return; // empty Bytes may hand us data == nullptr
    totalLen_ += len;
    if (bufferLen_) {
        size_t take = std::min(len, blockBytes - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, data, take);
        bufferLen_ += take;
        data += take;
        len -= take;
        if (bufferLen_ == blockBytes) {
            sha1BlockT(state_, buffer_, nullMeter);
            bufferLen_ = 0;
        }
    }
    while (len >= blockBytes) {
        sha1BlockT(state_, data, nullMeter);
        data += blockBytes;
        len -= blockBytes;
    }
    if (len) {
        std::memcpy(buffer_, data, len);
        bufferLen_ = len;
    }
}

void
Sha1::final(uint8_t *out)
{
    uint64_t bit_len = totalLen_ * 8;
    // One-buffer padding; at most two block ops in final().
    uint8_t pad[72] = {0x80};
    size_t pad_len =
        (bufferLen_ < 56 ? 56 : 120) - bufferLen_;
    store64be(pad + pad_len, bit_len);
    update(pad, pad_len + 8);
    for (int i = 0; i < 5; ++i)
        store32be(out + 4 * i, state_.h[i]);
}

std::unique_ptr<Digest>
Sha1::clone() const
{
    return std::make_unique<Sha1>(*this);
}

Bytes
Sha1::hash(const Bytes &data)
{
    Sha1 sha;
    sha.update(data);
    return sha.final();
}

} // namespace ssla::crypto

/**
 * @file
 * PKCS #1 v1.5 encryption/signature block formatting.
 *
 * The paper's Table 7 measures the removal of this padding as the
 * "block_parsing" step of RSA decryption (~1.6% at 512 bits).
 */

#ifndef SSLA_CRYPTO_PKCS1_HH
#define SSLA_CRYPTO_PKCS1_HH

#include "crypto/rand.hh"
#include "util/types.hh"

namespace ssla::crypto
{

/**
 * Build an encryption block: 0x00 0x02 <nonzero random> 0x00 <data>.
 *
 * @param data payload (at most blockLen - 11 bytes)
 * @param block_len the RSA modulus length in bytes
 * @throws std::length_error when the payload does not fit
 */
Bytes pkcs1PadType2(const Bytes &data, size_t block_len,
                    RandomPool &pool);

/**
 * Build a signature block: 0x00 0x01 <0xff padding> 0x00 <data>.
 */
Bytes pkcs1PadType1(const Bytes &data, size_t block_len);

/**
 * Parse a type-2 (encryption) block and return the payload.
 * @throws std::runtime_error on malformed padding
 */
Bytes pkcs1UnpadType2(const Bytes &block);

/**
 * Parse a type-1 (signature) block and return the payload.
 * @throws std::runtime_error on malformed padding
 */
Bytes pkcs1UnpadType1(const Bytes &block);

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_PKCS1_HH

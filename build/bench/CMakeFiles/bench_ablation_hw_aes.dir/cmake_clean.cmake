file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hw_aes.dir/bench_ablation_hw_aes.cc.o"
  "CMakeFiles/bench_ablation_hw_aes.dir/bench_ablation_hw_aes.cc.o.d"
  "bench_ablation_hw_aes"
  "bench_ablation_hw_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hw_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

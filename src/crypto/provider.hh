/**
 * @file
 * Pluggable crypto provider layer — the dispatch seam between the SSL
 * stack and the crypto kernels.
 *
 * Every cipher, digest and HMAC instance (and every RSA private-key
 * operation) used by the record layer, the handshake state machines,
 * the web simulator and the benches is created through a Provider.
 * Three providers ship:
 *
 *  - ScalarProvider: today's synchronous scalar kernels, unchanged.
 *  - InstrumentedProvider: a decorator that brackets each record-level
 *    operation with the perf probes the paper's Table 2/3 breakdowns
 *    use ("mac", "pri_encryption", "pri_decryption"), so the cycle
 *    accounting lives in the dispatch layer instead of ad-hoc call
 *    sites.
 *  - PipelinedProvider: a worker-thread crypto engine implementing the
 *    paper's Section 6.2 optimization — the record MAC of record n+1
 *    is computed while record n is being CBC-encrypted (see
 *    RecordLayer::sendMany()).
 *  - FastProvider: scalar record path, but all RSA private-key math on
 *    the bn64 engine (64-bit limbs + Karatsuba) — the modern backend
 *    A/B'd against the paper-era core by bench_bn_backend.
 *
 * Each provider also names the bignum backend its public-key math runs
 * on (bnEngine()); the paper-era providers pin bn32 so the Table 7/8
 * profiles stay anchored.
 *
 * The record MAC is a first-class provider operation (rather than a
 * digest-level composition at the call site) because it is the unit a
 * hardware engine would accept: the paper's Figure 6 control unit
 * fetches whole record descriptors, not individual hash blocks.
 */

#ifndef SSLA_CRYPTO_PROVIDER_HH
#define SSLA_CRYPTO_PROVIDER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/cipher.hh"
#include "crypto/digest.hh"
#include "crypto/hmac.hh"
#include "crypto/rsa.hh"
#include "util/iovec.hh"

namespace ssla::crypto
{

/**
 * Upper bound on any record MAC length (SHA-1, 20 bytes). Callers of
 * the span-based MAC surface size stack/arena storage with this.
 */
constexpr size_t maxRecordMacLen = 20;

/**
 * Immutable parameters of one direction's record MAC: which digest,
 * the MAC secret, and the protocol version selecting the construction
 * (0x0300 = SSLv3 pad-concatenation MAC, 0x0301+ = TLS 1.0 HMAC).
 */
struct RecordMacSpec
{
    DigestAlg alg = DigestAlg::SHA1;
    Bytes secret;
    uint16_t version = 0x0300;
};

/**
 * Handle to a (possibly asynchronous) record-MAC computation that
 * writes its result into caller-owned storage (span discipline: the
 * engine fills the MAC slot of the staged wire image directly, no
 * intermediate Bytes).
 *
 * Synchronous providers resolve the job at submit time; the pipelined
 * provider resolves it on its worker thread. wait() blocks until the
 * MAC has been written and rethrows any exception the job raised.
 */
class MacJob
{
  public:
    struct State;

    MacJob() = default;
    explicit MacJob(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    /**
     * Block until the MAC is in the submit-time output slot; returns
     * the MAC length written there.
     */
    size_t wait();

    bool valid() const { return state_ != nullptr; }

  private:
    std::shared_ptr<State> state_;
};

/**
 * Thrown (as a job error) when an asynchronous engine refuses new work
 * because its queue is full. The SSL server maps it to the
 * internal_error alert — the failure is local overload, not a protocol
 * violation by the peer.
 */
class ProviderOverloadError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Thrown (as a job error) when deadline-aware admission sheds a queued
 * job whose queue wait already exceeded its deadline budget — the RSA
 * cycles it would burn cannot save its handshake, so the engine fails
 * it before touching a Montgomery context. A species of overload, so
 * it maps to the same internal_error alert.
 */
class ProviderDeadlineError : public ProviderOverloadError
{
  public:
    using ProviderOverloadError::ProviderOverloadError;
};

/**
 * Thrown (as a job error) when the crypto engine itself failed — a
 * supervisor declared the executing thread dead and failed the
 * in-flight job so the parked session terminates instead of hanging.
 * Maps to internal_error: the fault is local, not the peer's.
 */
class ProviderFailureError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Handle to a (possibly asynchronous) RSA private-key operation.
 *
 * Unlike MacJob, an RsaJob owns its input bytes, so the submitting
 * state machine may discard the handshake message and service other
 * sessions while the operation is in flight. ready() is a lock-free
 * poll: a serving worker parks the session and revisits it instead of
 * blocking, the paper's Section 6.2 "do other useful work while the
 * crypto operation is executed" applied across connections.
 */
class RsaJob
{
  public:
    /** Shared completion state (public so engines can resolve jobs). */
    struct State
    {
        std::mutex m;
        std::condition_variable cv;
        std::atomic<bool> ready{false};
        std::atomic<bool> cancelled{false};
        /** First-wins resolution guard (see finish()). */
        std::atomic<bool> resolved{false};
        Bytes result;
        std::exception_ptr error;

        /**
         * Publish the result (or error) and wake any waiter.
         *
         * First writer wins: a job can legitimately be resolved from
         * two sides at once — the crypto thread completing it versus a
         * supervisor failing it after declaring that thread stalled,
         * or a cancel-path resolution racing the worker's own — and
         * the loser's outcome must not clobber what a waiter already
         * observed. Late calls are silently dropped.
         */
        void
        finish(Bytes value, std::exception_ptr err)
        {
            if (resolved.exchange(true, std::memory_order_acq_rel))
                return;
            {
                std::lock_guard<std::mutex> lock(m);
                result = std::move(value);
                error = std::move(err);
            }
            ready.store(true, std::memory_order_release);
            cv.notify_all();
        }
    };

    RsaJob() = default;
    explicit RsaJob(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    /** Non-blocking completion poll (the parking predicate). */
    bool
    ready() const
    {
        return state_ && state_->ready.load(std::memory_order_acquire);
    }

    /** Block until done; returns the result or rethrows the error. */
    Bytes wait();

    bool valid() const { return state_ != nullptr; }

    /**
     * Request cancellation. A queued job the engine has not started is
     * skipped (never executed, so it cannot touch state the submitter
     * has since torn down); a job already executing completes into the
     * shared state, which outlives both sides by construction. The
     * handle stays pollable either way. No-op on an empty handle.
     */
    void
    cancel()
    {
        if (state_)
            state_->cancelled.store(true, std::memory_order_release);
    }

    /** True when cancel() was requested (engines poll this). */
    bool
    cancelRequested() const
    {
        return state_ &&
               state_->cancelled.load(std::memory_order_acquire);
    }

    /** Drop the handle (a parked session resets after resolving). */
    void reset() { state_.reset(); }

  private:
    std::shared_ptr<State> state_;
};

/**
 * A crypto engine: the factory for all cipher/digest/HMAC instances
 * plus the dispatch point for record MACs and RSA private-key
 * operations.
 */
class Provider
{
  public:
    virtual ~Provider() = default;

    /** Registry name ("scalar", "instrumented", "pipelined", "fast"). */
    virtual const char *name() const = 0;

    /** Create a bulk-cipher instance (see Cipher). */
    virtual std::unique_ptr<Cipher> createCipher(CipherAlg alg,
                                                 const Bytes &key,
                                                 const Bytes &iv,
                                                 bool encrypt) = 0;

    /** Create a hash instance (see Digest). */
    virtual std::unique_ptr<Digest> createDigest(DigestAlg alg) = 0;

    /** Create an HMAC instance keyed with @p key. */
    virtual std::unique_ptr<Hmac> createHmac(DigestAlg alg,
                                             const Bytes &key) = 0;

    /**
     * Compute the record MAC for one fragment (construction selected
     * by spec.version; see RecordMacSpec) into @p mac_out, which must
     * hold at least maxRecordMacLen bytes. Returns the MAC length
     * written. @p data and @p mac_out may belong to the same backing
     * buffer (MAC appended behind the payload) but must not overlap.
     */
    virtual size_t recordMac(const RecordMacSpec &spec, uint64_t seq,
                             uint8_t type, ConstSpan data,
                             uint8_t *mac_out) = 0;

    /**
     * Submit a record MAC for (possibly asynchronous) computation into
     * @p mac_out. Both @p data and @p mac_out must stay valid (and the
     * output slot untouched) until the returned job's wait() returns.
     * The base implementation computes inline.
     */
    virtual MacJob submitRecordMac(const RecordMacSpec &spec,
                                   uint64_t seq, uint8_t type,
                                   ConstSpan data, uint8_t *mac_out);

    /** RSA private-key decryption (PKCS#1 v1.5). */
    virtual Bytes rsaDecrypt(const RsaPrivateKey &key,
                             const Bytes &cipher) = 0;

    /** RSA private-key signature (PKCS#1 type 1). */
    virtual Bytes rsaSign(const RsaPrivateKey &key,
                          const Bytes &digest_data) = 0;

    /**
     * Submit an RSA private-key decryption for (possibly asynchronous)
     * completion. The job owns @p cipher. The base implementation
     * computes inline, so synchronous providers resolve at submit time
     * and callers that poll ready() immediately proceed unchanged;
     * pool-backed providers (serve::PooledProvider) complete the job on
     * a crypto thread while the submitter multiplexes other sessions.
     */
    virtual RsaJob submitRsaDecrypt(const RsaPrivateKey &key,
                                    Bytes cipher);

    /** Asynchronous counterpart of rsaSign (same contract as above). */
    virtual RsaJob submitRsaSign(const RsaPrivateKey &key,
                                 Bytes digest_data);

    /**
     * True when submitRecordMac() overlaps with the caller — i.e. the
     * record layer should use the scatter/gather pipeline in
     * sendMany() to realize the paper's Section 6.2 MAC/encrypt
     * overlap.
     */
    virtual bool pipelined() const { return false; }

    /**
     * The bignum backend this provider's public-key math runs on. The
     * base (and every paper-era provider: scalar, instrumented,
     * pipelined) reports bn32 — keeping the Table 7/8 profiling anchor
     * bit-for-bit unchanged; the fast provider reports bn64. Callers
     * driving engine-sensitive work outside the provider surface (DHE
     * key agreement, PKI verification via the free bn::modExp) wrap it
     * in bn::EngineScope(provider.bnEngine()).
     */
    virtual const bn::Engine &bnEngine() const;
};

/** The plain synchronous scalar-kernel provider. */
class ScalarProvider final : public Provider
{
  public:
    const char *name() const override { return "scalar"; }
    std::unique_ptr<Cipher> createCipher(CipherAlg alg, const Bytes &key,
                                         const Bytes &iv,
                                         bool encrypt) override;
    std::unique_ptr<Digest> createDigest(DigestAlg alg) override;
    std::unique_ptr<Hmac> createHmac(DigestAlg alg,
                                     const Bytes &key) override;
    size_t recordMac(const RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    Bytes rsaDecrypt(const RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const RsaPrivateKey &key,
                  const Bytes &digest_data) override;
};

/**
 * Decorator adding the paper's per-operation cycle probes around
 * another provider's record-level operations. Ciphers created through
 * it self-report as "pri_encryption"/"pri_decryption" per process()
 * call and record MACs as "mac" — the names Table 2/3 and the web
 * simulator's Figure 2 breakdown aggregate.
 */
class InstrumentedProvider final : public Provider
{
  public:
    /** Wrap @p inner (not owned; must outlive this provider). */
    explicit InstrumentedProvider(Provider &inner) : inner_(inner) {}

    const char *name() const override { return "instrumented"; }
    std::unique_ptr<Cipher> createCipher(CipherAlg alg, const Bytes &key,
                                         const Bytes &iv,
                                         bool encrypt) override;
    std::unique_ptr<Digest> createDigest(DigestAlg alg) override;
    std::unique_ptr<Hmac> createHmac(DigestAlg alg,
                                     const Bytes &key) override;
    size_t recordMac(const RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    Bytes rsaDecrypt(const RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const RsaPrivateKey &key,
                  const Bytes &digest_data) override;

  private:
    Provider &inner_;
};

/**
 * The asynchronous engine of the paper's Section 6.2: a worker thread
 * computes submitted record MACs while the caller keeps encrypting.
 * Object creation delegates to the scalar kernels; only the record-MAC
 * operation is offloaded (the CBC chain serializes encryption on the
 * submitting thread, exactly the constraint the paper notes).
 */
class PipelinedProvider final : public Provider
{
  public:
    PipelinedProvider();
    ~PipelinedProvider() override;

    PipelinedProvider(const PipelinedProvider &) = delete;
    PipelinedProvider &operator=(const PipelinedProvider &) = delete;

    const char *name() const override { return "pipelined"; }
    std::unique_ptr<Cipher> createCipher(CipherAlg alg, const Bytes &key,
                                         const Bytes &iv,
                                         bool encrypt) override;
    std::unique_ptr<Digest> createDigest(DigestAlg alg) override;
    std::unique_ptr<Hmac> createHmac(DigestAlg alg,
                                     const Bytes &key) override;
    size_t recordMac(const RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    MacJob submitRecordMac(const RecordMacSpec &spec, uint64_t seq,
                           uint8_t type, ConstSpan data,
                           uint8_t *mac_out) override;
    Bytes rsaDecrypt(const RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const RsaPrivateKey &key,
                  const Bytes &digest_data) override;
    bool pipelined() const override { return true; }

  private:
    struct Engine;
    ScalarProvider scalar_;
    std::unique_ptr<Engine> engine_;
};

/**
 * The modern-backend provider ("fast"): scalar kernels for the bulk
 * cipher/digest/MAC path, bn64 (64-bit limbs, __int128 intermediates,
 * Karatsuba) for all RSA private-key math. Keys already built on bn64
 * are used directly; keys built on bn32 are transparently replicated
 * onto bn64 once per thread (mirroring the CryptoPool's per-thread key
 * replicas), so the single-owner Montgomery scratch and blinding
 * contracts hold without locks.
 */
class FastProvider final : public Provider
{
  public:
    const char *name() const override { return "fast"; }
    std::unique_ptr<Cipher> createCipher(CipherAlg alg, const Bytes &key,
                                         const Bytes &iv,
                                         bool encrypt) override;
    std::unique_ptr<Digest> createDigest(DigestAlg alg) override;
    std::unique_ptr<Hmac> createHmac(DigestAlg alg,
                                     const Bytes &key) override;
    size_t recordMac(const RecordMacSpec &spec, uint64_t seq,
                     uint8_t type, ConstSpan data,
                     uint8_t *mac_out) override;
    Bytes rsaDecrypt(const RsaPrivateKey &key,
                     const Bytes &cipher) override;
    Bytes rsaSign(const RsaPrivateKey &key,
                  const Bytes &digest_data) override;
    const bn::Engine &bnEngine() const override;

  private:
    /** @p key itself when bn64-bound, else this thread's bn64 replica. */
    const RsaPrivateKey &fastKey(const RsaPrivateKey &key);

    ScalarProvider scalar_;
};

/** The process-wide scalar provider singleton. */
Provider &scalarProvider();

/**
 * The default provider: the instrumented scalar provider, preserving
 * the library's always-on probe points (a probe with no PerfContext
 * installed costs one branch).
 */
Provider &defaultProvider();

/**
 * Create an owned provider by registry name: "scalar", "instrumented"
 * (wrapping the scalar singleton), "pipelined" or "fast".
 * @throws std::invalid_argument for unknown names
 */
std::unique_ptr<Provider> createProvider(const std::string &name);

/** All registry names, in presentation order. */
const std::vector<std::string> &providerNames();

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_PROVIDER_HH

#include "crypto/rand.hh"

#include <chrono>
#include <cstring>

#include "perf/probe.hh"
#include "util/endian.hh"

namespace ssla::crypto
{

RandomPool::RandomPool()
{
    std::memset(state_, 0, sizeof(state_));
    // Cheap process-local entropy; cryptographic quality is not the
    // point of this reproduction, execution profile is.
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    uint64_t ticks = static_cast<uint64_t>(now.count());
    uint64_t self = reinterpret_cast<uintptr_t>(this);
    uint8_t buf[16];
    store64le(buf, ticks);
    store64le(buf + 8, self);
    seed(buf, sizeof(buf));
}

RandomPool::RandomPool(const Bytes &seed_material)
{
    std::memset(state_, 0, sizeof(state_));
    seed(seed_material);
}

void
RandomPool::seed(const uint8_t *data, size_t len)
{
    Md5 md;
    md.update(state_, sizeof(state_));
    md.update(data, len);
    md.final(state_);
    available_ = 0;
}

void
RandomPool::seed(const Bytes &data)
{
    seed(data.data(), data.size());
}

void
RandomPool::stir()
{
    uint8_t ctr[8];
    store64le(ctr, counter_++);
    Md5 md;
    md.update(state_, sizeof(state_));
    md.update(ctr, sizeof(ctr));
    md.final(buffer_);
    // Fold the output back into the state so the stream is forward
    // chained (as md_rand does).
    for (size_t i = 0; i < sizeof(state_); ++i)
        state_[i] ^= buffer_[i];
    available_ = sizeof(buffer_);
}

void
RandomPool::generate(uint8_t *out, size_t len)
{
    perf::FuncProbe probe("rand_pseudo_bytes");
    while (len) {
        if (!available_)
            stir();
        size_t take = std::min(len, available_);
        std::memcpy(out, buffer_ + (sizeof(buffer_) - available_), take);
        out += take;
        len -= take;
        available_ -= take;
    }
}

Bytes
RandomPool::bytes(size_t len)
{
    Bytes out(len);
    generate(out.data(), len);
    return out;
}

RandomPool &
globalRandomPool()
{
    // One pool per thread rather than one mutex-guarded process pool:
    // generate() mutates state_/buffer_/counter_ on every call, so a
    // shared pool would serialize every handshake's randoms behind one
    // lock (and raced before this change). The default constructor
    // seeds from the clock and the pool's own address, so concurrently
    // live per-thread pools produce distinct streams.
    thread_local RandomPool pool;
    return pool;
}

void
randPseudoBytes(uint8_t *out, size_t len)
{
    globalRandomPool().generate(out, len);
}

} // namespace ssla::crypto

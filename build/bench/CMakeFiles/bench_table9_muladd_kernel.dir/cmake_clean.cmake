file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_muladd_kernel.dir/bench_table9_muladd_kernel.cc.o"
  "CMakeFiles/bench_table9_muladd_kernel.dir/bench_table9_muladd_kernel.cc.o.d"
  "bench_table9_muladd_kernel"
  "bench_table9_muladd_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_muladd_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Models of the paper's Section 6.2 optimization proposals.
 *
 * The paper sketches three acceleration tiers without evaluating them;
 * these helpers turn each sketch into a first-order model over our
 * measured op mixes and cycle counts so the ablation benches can put
 * numbers next to the qualitative claims:
 *
 *  (1) ISA support (Figure 4): a 3-input logical instruction collapses
 *      the 2-op chains in the MD5/SHA-1 round functions and removes
 *      the register-pressure spills they force on x86-32.
 *  (2) A hardware AES round unit (Figure 5): the 16 table lookups +
 *      XOR tree of one round become a single pipelined operation.
 *  (3) A crypto engine (Figure 6): MAC and encryption of a record
 *      overlap instead of running back to back.
 */

#ifndef SSLA_PERF_ABLATION_HH
#define SSLA_PERF_ABLATION_HH

#include "perf/cpimodel.hh"
#include "perf/opcount.hh"

namespace ssla::perf
{

/** Before/after of an op-mix-level ablation. */
struct IsaAblation
{
    OpHistogram baseline;
    OpHistogram withIsa;
    CpiEstimate cpiBaseline;
    CpiEstimate cpiWithIsa;
    double speedup = 0.0; ///< baseline cycles / optimized cycles
};

/**
 * Apply the 3-operand-logical transformation to a hash kernel's
 * per-block histogram.
 *
 * @param per_block measured ops of one 64-byte block
 * @param fusable_pairs number of dependent 2-op logical pairs per
 *        block that a 3-input instruction collapses (48 F/G/I steps x
 *        1 pair for MD5; 40 Ch/Maj steps x 1 pair for SHA-1)
 * @param spills_removed movl spills eliminated by needing fewer
 *        temporaries
 */
IsaAblation ablateThreeOperandLogicals(const OpHistogram &per_block,
                                       uint64_t fusable_pairs,
                                       uint64_t spills_removed,
                                       const CoreParams &params = {});

/** Result of the AES round-unit ablation. */
struct AesUnitAblation
{
    double softwareCyclesPerBlock = 0.0;
    double hardwareCyclesPerBlock = 0.0;
    double speedup = 0.0;
};

/**
 * Model the Figure 5 hardware unit: each main round issues as one
 * pipelined op of @p round_latency cycles (the four basic ops are
 * independent, as the paper notes, so the unit executes them in
 * parallel); the first/last parts stay in software.
 *
 * @param software_block per-block histogram of the software kernel
 * @param rounds main-round count (9 for AES-128, 13 for AES-256)
 * @param soft_edge_cycles modeled cycles of software parts 1+3
 */
AesUnitAblation ablateAesRoundUnit(const OpHistogram &software_block,
                                   int rounds,
                                   double round_latency = 2.0,
                                   double soft_edge_cycles = 40.0,
                                   const CoreParams &params = {});

/** Result of the crypto-engine overlap ablation. */
struct EngineAblation
{
    double serialCycles = 0.0;     ///< MAC then encrypt, back to back
    double overlappedCycles = 0.0; ///< engine pipelining (Figure 6)
    double speedup = 0.0;
};

/**
 * Model the Figure 6 engine: encryption of the data proceeds in
 * parallel with the MAC; only the MAC trailer (+ padding) remains
 * serialized behind the hash unit.
 *
 * @param mac_cycles measured MAC cost of the record
 * @param enc_cycles measured encryption cost of the record
 * @param trailer_fraction fraction of enc_cycles spent on the
 *        MAC+padding trailer that cannot start before the MAC is done
 */
EngineAblation ablateCryptoEngine(double mac_cycles, double enc_cycles,
                                  double trailer_fraction = 0.05);

} // namespace ssla::perf

#endif // SSLA_PERF_ABLATION_HH

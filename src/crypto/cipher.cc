#include "crypto/cipher.hh"

#include <cstring>
#include <stdexcept>

#include "crypto/aes.hh"
#include "crypto/des.hh"
#include "crypto/rc4.hh"

namespace ssla::crypto
{

namespace
{

const CipherInfo infos[] = {
    {"NULL", 0, 1, 0},
    {"RC4-128", 16, 1, 0},
    {"DES-CBC", 8, 8, 8},
    {"DES-EDE3-CBC", 24, 8, 8},
    {"AES-128-CBC", 16, 16, 16},
    {"AES-256-CBC", 32, 16, 16},
};

/** No-op cipher for NULL suites. */
class NullCipher final : public Cipher
{
  public:
    const CipherInfo &info() const override
    {
        return cipherInfo(CipherAlg::Null);
    }

    void
    process(const uint8_t *in, uint8_t *out, size_t len) override
    {
        if (in != out)
            std::memmove(out, in, len);
    }
};

/** RC4 adapter. */
class Rc4Cipher final : public Cipher
{
  public:
    explicit Rc4Cipher(const Bytes &key) : rc4_(key) {}

    const CipherInfo &info() const override
    {
        return cipherInfo(CipherAlg::Rc4_128);
    }

    void
    process(const uint8_t *in, uint8_t *out, size_t len) override
    {
        rc4_.process(in, out, len);
    }

  private:
    Rc4 rc4_;
};

/** CBC chaining over any single-block cipher. */
template <class Block>
class CbcCipher final : public Cipher
{
  public:
    CbcCipher(CipherAlg alg, const Bytes &key, const Bytes &iv,
              bool encrypt)
        : block_(key), alg_(alg), encrypt_(encrypt)
    {
        if (iv.size() != Block::blockBytes)
            throw std::invalid_argument("CBC: bad IV length");
        std::memcpy(chain_, iv.data(), Block::blockBytes);
    }

    const CipherInfo &info() const override { return cipherInfo(alg_); }

    void
    process(const uint8_t *in, uint8_t *out, size_t len) override
    {
        constexpr size_t bs = Block::blockBytes;
        if (len % bs)
            throw std::invalid_argument("CBC: partial block");
        if (encrypt_) {
            for (size_t off = 0; off < len; off += bs) {
                uint8_t buf[bs];
                for (size_t i = 0; i < bs; ++i)
                    buf[i] = in[off + i] ^ chain_[i];
                block_.encryptBlock(buf, out + off);
                std::memcpy(chain_, out + off, bs);
            }
        } else {
            for (size_t off = 0; off < len; off += bs) {
                uint8_t cipher_block[bs];
                // Save first: in-place decryption overwrites the input.
                std::memcpy(cipher_block, in + off, bs);
                uint8_t buf[bs];
                block_.decryptBlock(cipher_block, buf);
                for (size_t i = 0; i < bs; ++i)
                    out[off + i] = buf[i] ^ chain_[i];
                std::memcpy(chain_, cipher_block, bs);
            }
        }
    }

  private:
    Block block_;
    CipherAlg alg_;
    bool encrypt_;
    uint8_t chain_[Block::blockBytes];
};

} // anonymous namespace

const CipherInfo &
cipherInfo(CipherAlg alg)
{
    return infos[static_cast<size_t>(alg)];
}

Bytes
Cipher::process(const Bytes &in)
{
    Bytes out(in.size());
    process(in.data(), out.data(), in.size());
    return out;
}

std::unique_ptr<Cipher>
Cipher::create(CipherAlg alg, const Bytes &key, const Bytes &iv,
               bool encrypt)
{
    const CipherInfo &ci = cipherInfo(alg);
    if (key.size() != ci.keyLen)
        throw std::invalid_argument("Cipher::create: bad key length");
    switch (alg) {
      case CipherAlg::Null:
        return std::make_unique<NullCipher>();
      case CipherAlg::Rc4_128:
        return std::make_unique<Rc4Cipher>(key);
      case CipherAlg::DesCbc:
        return std::make_unique<CbcCipher<Des>>(alg, key, iv, encrypt);
      case CipherAlg::Des3Cbc:
        return std::make_unique<CbcCipher<TripleDes>>(alg, key, iv,
                                                      encrypt);
      case CipherAlg::Aes128Cbc:
      case CipherAlg::Aes256Cbc:
        return std::make_unique<CbcCipher<Aes>>(alg, key, iv, encrypt);
    }
    throw std::invalid_argument("Cipher::create: unknown algorithm");
}

} // namespace ssla::crypto

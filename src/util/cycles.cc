#include "util/cycles.hh"

#include <chrono>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace ssla
{

uint64_t
rdcycles()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    auto now = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
#endif
}

namespace
{

/** Measure TSC ticks across a known wall-clock interval. */
double
calibrate()
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    uint64_t c0 = rdcycles();
    // Spin for ~20ms; long enough to average out scheduling noise,
    // short enough not to annoy test startup.
    while (clock::now() - t0 < std::chrono::milliseconds(20)) {
    }
    auto t1 = clock::now();
    uint64_t c1 = rdcycles();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(c1 - c0) / secs;
}

} // anonymous namespace

double
cycleHz()
{
    static const double hz = calibrate();
    return hz;
}

double
cyclesToSeconds(uint64_t cycles)
{
    return static_cast<double>(cycles) / cycleHz();
}

uint64_t
threadCpuCycles()
{
#if defined(__linux__) || defined(__APPLE__)
    struct timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        double secs = static_cast<double>(ts.tv_sec) +
                      static_cast<double>(ts.tv_nsec) * 1e-9;
        return static_cast<uint64_t>(secs * cycleHz());
    }
#endif
    return rdcycles();
}

} // namespace ssla

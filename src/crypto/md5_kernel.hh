/**
 * @file
 * The MD5 block transform as a Meter-policy template (RFC 1321).
 *
 * Each of the 64 steps computes a = b + rotl(a + F(b,c,d) + x[k] + T,
 * s); the metered instantiation counts the x86-32 ops of a 2005-era
 * compilation of exactly that expression, feeding the instruction-mix
 * and path-length studies (paper Tables 11/12).
 */

#ifndef SSLA_CRYPTO_MD5_KERNEL_HH
#define SSLA_CRYPTO_MD5_KERNEL_HH

#include <cstdint>

#include "perf/opcount.hh"
#include "util/endian.hh"

namespace ssla::crypto
{

namespace md5detail
{

// Round functions, written in their 3-logical-op forms. The paper's
// Figure 4 discusses these as candidates for 3-input ISA support.
inline uint32_t
fF(uint32_t x, uint32_t y, uint32_t z)
{
    return z ^ (x & (y ^ z)); // == (x & y) | (~x & z)
}

inline uint32_t
fG(uint32_t x, uint32_t y, uint32_t z)
{
    return y ^ (z & (x ^ y)); // == (x & z) | (y & ~z)
}

inline uint32_t
fH(uint32_t x, uint32_t y, uint32_t z)
{
    return x ^ y ^ z;
}

inline uint32_t
fI(uint32_t x, uint32_t y, uint32_t z)
{
    return y ^ (x | ~z);
}

/** Per-step op accounting for one MD5 step with @p logicals logic ops. */
template <class Meter>
inline void
countStep(Meter &m, unsigned logicals)
{
    if constexpr (Meter::counting) {
        using perf::OpClass;
        // movl x[k]; three addl folded as addl+leal pairs; roll; addl b.
        m.count(OpClass::MovL, 2);  // load x[k], register shuffle/spill
        m.count(OpClass::LeaL, 1);  // a + x[k] + T in one lea
        m.count(OpClass::AddL, 2);
        m.count(OpClass::RolL, 1);
        m.count(OpClass::XorL, logicals >= 2 ? 2 : logicals);
        if (logicals >= 3)
            m.count(OpClass::AndL, 1);
    }
}

} // namespace md5detail

/** The 64 MD5 additive constants T[i] = floor(2^32 * |sin(i+1)|). */
const uint32_t *md5SineTable();

/** MD5 chaining state. */
struct Md5State
{
    uint32_t a, b, c, d;
};

/** Apply the MD5 compression function to one 64-byte block. */
template <class Meter>
void
md5BlockT(Md5State &s, const uint8_t block[64], Meter &m)
{
    using namespace md5detail;
    using perf::OpClass;

    uint32_t x[16];
    for (int i = 0; i < 16; ++i)
        x[i] = load32le(block + 4 * i);
    if constexpr (Meter::counting) {
        // Message load: 16 loads + 16 stores to the local schedule.
        m.count(OpClass::MovL, 32);
    }

    uint32_t a = s.a, b = s.b, c = s.c, d = s.d;

#define SSLA_MD5_STEP(f, w, xk, t, r, nlog)                               \
    do {                                                                  \
        w += f + (xk) + (t);                                              \
        w = rotl32(w, r);                                                 \
        w += b0;                                                          \
        countStep(m, nlog);                                               \
    } while (0)

    // T[i] = floor(2^32 * |sin(i+1)|), per RFC 1321.
    const uint32_t *t = md5SineTable();
    const uint32_t *t1 = t;
    const uint32_t *t2 = t + 16;
    const uint32_t *t3 = t + 32;
    const uint32_t *t4 = t + 48;
    static const int s1[4] = {7, 12, 17, 22};
    static const int s2[4] = {5, 9, 14, 20};
    static const int s3[4] = {4, 11, 16, 23};
    static const int s4[4] = {6, 10, 15, 21};

    for (int i = 0; i < 16; ++i) {
        uint32_t f = fF(b, c, d);
        uint32_t b0 = b;
        SSLA_MD5_STEP(f, a, x[i], t1[i], s1[i % 4], 3);
        uint32_t tmp = d;
        d = c;
        c = b;
        b = a;
        a = tmp;
    }
    for (int i = 0; i < 16; ++i) {
        uint32_t f = fG(b, c, d);
        uint32_t b0 = b;
        SSLA_MD5_STEP(f, a, x[(1 + 5 * i) % 16], t2[i], s2[i % 4], 3);
        uint32_t tmp = d;
        d = c;
        c = b;
        b = a;
        a = tmp;
    }
    for (int i = 0; i < 16; ++i) {
        uint32_t f = fH(b, c, d);
        uint32_t b0 = b;
        SSLA_MD5_STEP(f, a, x[(5 + 3 * i) % 16], t3[i], s3[i % 4], 2);
        uint32_t tmp = d;
        d = c;
        c = b;
        b = a;
        a = tmp;
    }
    for (int i = 0; i < 16; ++i) {
        uint32_t f = fI(b, c, d);
        uint32_t b0 = b;
        SSLA_MD5_STEP(f, a, x[(7 * i) % 16], t4[i], s4[i % 4], 3);
        uint32_t tmp = d;
        d = c;
        c = b;
        b = a;
        a = tmp;
    }

#undef SSLA_MD5_STEP

    s.a += a;
    s.b += b;
    s.c += c;
    s.d += d;
    if constexpr (Meter::counting) {
        // State fold-in plus loop/call overhead.
        m.count(OpClass::MovL, 8);
        m.count(OpClass::AddL, 4);
        m.count(OpClass::Push, 4);
        m.count(OpClass::Pop, 4);
        m.count(OpClass::Ret, 1);
    }
}

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_MD5_KERNEL_HH

/**
 * @file
 * Accept-gate circuit breaker: the cheapest point to refuse a
 * handshake is before any of it runs.
 *
 * Admission control in the CryptoPool sheds a handshake after the
 * ClientHello is parsed and the pre-master has been sent — cheap, but
 * not free. When overload failures become a streak, the breaker trips
 * and the serving engine refuses *new full handshakes at accept*,
 * while resumption handshakes (no RSA private-key op; Table 2's ~1/8
 * cost) stay admitted — the same preferential dispatch the admission
 * classes encode, applied one layer earlier. After a hold-off the
 * breaker goes half-open and admits a bounded number of probe
 * handshakes; enough successes close it, one failure re-opens it.
 *
 * Thread safety: all entry points are internally synchronized; state
 * reads are lock-free. One breaker instance is shared by all engine
 * workers.
 */

#ifndef SSLA_SERVE_BREAKER_HH
#define SSLA_SERVE_BREAKER_HH

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hh"

namespace ssla::serve
{

enum class BreakerState : uint8_t
{
    Closed = 0,   ///< normal operation, everything admitted
    Open = 1,     ///< only resumption handshakes admitted
    HalfOpen = 2, ///< bounded full-handshake probes admitted
};

/** Display name of a breaker state ("closed", "open", "half_open"). */
const char *breakerStateName(BreakerState state);

struct BreakerConfig
{
    /** Consecutive overload failures that trip Closed -> Open. */
    uint32_t tripThreshold = 8;
    /** Cycles to hold Open before probing (0 = ~10 ms). */
    uint64_t openHoldCycles = 0;
    /** Full handshakes admitted per HalfOpen episode. */
    uint32_t halfOpenProbes = 4;
    /** Probe successes needed to close from HalfOpen. */
    uint32_t closeThreshold = 2;
};

class CircuitBreaker
{
  public:
    explicit CircuitBreaker(BreakerConfig cfg = {});

    CircuitBreaker(const CircuitBreaker &) = delete;
    CircuitBreaker &operator=(const CircuitBreaker &) = delete;

    /**
     * Gate for a NEW FULL handshake at accept. Returns false when the
     * engine must refuse it (breaker Open, or HalfOpen with the probe
     * budget spent). Resumption handshakes are never gated — callers
     * simply don't ask. Handles the Open -> HalfOpen hold-off
     * transition internally.
     */
    bool admitFull();

    /**
     * Feed: a session died from overload (fatal internal_error). A
     * streak of these trips the breaker; any one re-opens HalfOpen.
     */
    void noteOverloadFailure();

    /** Feed: a full (non-resumed) handshake completed. */
    void noteFullHandshakeSuccess();

    BreakerState
    state() const
    {
        return static_cast<BreakerState>(
            stateCache_.load(std::memory_order_acquire));
    }

    uint64_t trips() const
    {
        return trips_.load(std::memory_order_relaxed);
    }

    uint64_t refusals() const
    {
        return refusals_.load(std::memory_order_relaxed);
    }

    uint64_t transitions() const
    {
        return transitions_.load(std::memory_order_relaxed);
    }

    /**
     * Re-point serve.breaker_* metrics (state gauge, trip/refusal
     * counters) at @p reg; bind before traffic flows.
     */
    void bindMetrics(obs::MetricsRegistry *reg);

  private:
    /** Transition to @p next; caller holds m_. */
    void transitionLocked(BreakerState next, uint64_t now);

    BreakerConfig cfg_;
    mutable std::mutex m_;
    BreakerState state_ = BreakerState::Closed;
    uint32_t failStreak_ = 0;
    uint32_t probesIssued_ = 0;
    uint32_t probeSuccesses_ = 0;
    uint64_t openedCycles_ = 0;

    std::atomic<uint8_t> stateCache_{0};
    std::atomic<uint64_t> trips_{0};
    std::atomic<uint64_t> refusals_{0};
    std::atomic<uint64_t> transitions_{0};
    obs::Gauge gaugeState_;
    obs::Counter ctrTrips_;
    obs::Counter ctrRefusals_;
};

} // namespace ssla::serve

#endif // SSLA_SERVE_BREAKER_HH

file(REMOVE_RECURSE
  "libssla_crypto.a"
)

/**
 * @file
 * Cycle-accounting probes — the reproduction's VTune/Oprofile substitute.
 *
 * A PerfContext is a named-counter sink. Library code never takes a
 * context parameter; instead the measuring code installs a context as
 * the thread-local "current" one (ContextScope) and instrumented
 * functions self-report through FuncProbe. When no context is installed
 * a probe costs a single predictable branch, so the production path
 * stays clean.
 *
 * Probes maintain a per-thread stack so each counter records both
 *  - inclusive cycles (children included) — what the paper's Table 2
 *    reports per crypto function, and
 *  - exclusive cycles (children subtracted) — the flat profile of
 *    Table 8, matching how a sampling profiler attributes time.
 *
 * Two probe levels mirror the paper's two profiling granularities:
 *  - Coarse: SSL-visible crypto entry points (Table 2's function column)
 *  - Fine:   bignum inner kernels (Table 8's function profile); these
 *            fire millions of times, so they only report when the
 *            context explicitly opts in.
 */

#ifndef SSLA_PERF_PROBE_HH
#define SSLA_PERF_PROBE_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/cycles.hh"

namespace ssla::perf
{

/** Accumulated cycles and invocation count for one named region. */
struct Counter
{
    uint64_t inclusive = 0; ///< cycles including instrumented children
    uint64_t exclusive = 0; ///< cycles with instrumented children removed
    uint64_t calls = 0;
};

/** Probe granularity; see file comment. */
enum class ProbeLevel
{
    Coarse,
    Fine,
};

/** A sink for named cycle counters. */
class PerfContext
{
  public:
    /** @param fine_grained also collect Fine-level (bignum) probes. */
    explicit PerfContext(bool fine_grained = false)
        : fineGrained_(fine_grained)
    {}

    /**
     * Record one probe firing. @p name must have static storage
     * duration: the hot path keys by pointer so that a probe costs a
     * hash of one word, not a string map walk (names are merged by
     * content when counters() builds its snapshot).
     */
    void
    add(const char *name, uint64_t inclusive, uint64_t exclusive)
    {
        auto &c = raw_[name];
        c.inclusive += inclusive;
        c.exclusive += exclusive;
        c.calls += 1;
        dirty_ = true;
    }

    bool collectFine() const { return fineGrained_; }

    /** Name-keyed snapshot of all counters (rebuilt lazily). */
    const std::map<std::string, Counter> &counters() const;

    /** Inclusive cycles recorded under @p name (0 if never hit). */
    uint64_t cyclesFor(const std::string &name) const;

    /** Sum of inclusive cycles over every counter named in @p names. */
    uint64_t cyclesFor(const std::vector<std::string> &names) const;

    /** Sum of exclusive cycles over all counters. */
    uint64_t totalExclusive() const;

    void
    clear()
    {
        raw_.clear();
        snapshot_.clear();
        dirty_ = false;
    }

  private:
    std::unordered_map<const char *, Counter> raw_;
    mutable std::map<std::string, Counter> snapshot_;
    mutable bool dirty_ = false;
    bool fineGrained_;
};

/** The thread-local context probes currently report to (may be null). */
PerfContext *currentContext();

/** RAII installer for the thread-local current context. */
class ContextScope
{
  public:
    explicit ContextScope(PerfContext *ctx);
    ~ContextScope();

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    PerfContext *prev_;
};

/**
 * RAII probe around an instrumented function body.
 *
 * @p name must have static storage duration (string literal).
 */
class FuncProbe
{
  public:
    explicit FuncProbe(const char *name,
                       ProbeLevel level = ProbeLevel::Coarse);
    ~FuncProbe();

    FuncProbe(const FuncProbe &) = delete;
    FuncProbe &operator=(const FuncProbe &) = delete;

  private:
    PerfContext *ctx_;
    const char *name_;
    FuncProbe *parent_ = nullptr;
    uint64_t start_ = 0;
    uint64_t childCycles_ = 0;
};

} // namespace ssla::perf

#endif // SSLA_PERF_PROBE_HH

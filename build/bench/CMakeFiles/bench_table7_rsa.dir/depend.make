# Empty dependencies file for bench_table7_rsa.
# This may be replaced when dependencies are built.

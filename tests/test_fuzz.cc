/**
 * @file
 * Failure-injection and fuzz tests: random corruption, truncation and
 * garbage across every parser and the handshake itself. The invariant
 * everywhere: malformed input produces a typed error (SslError or a
 * std exception), never a crash, hang or silent acceptance.
 */

#include <gtest/gtest.h>

#include "pki/cert.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/rng.hh"
#include "web/http.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

ServerConfig
serverConfig()
{
    ServerConfig cfg;
    cfg.certificate = test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    return cfg;
}

TEST(Fuzz, ServerSurvivesRandomRecords)
{
    // Throw random byte blobs at a fresh server: every outcome must be
    // either "waiting for more input" or a clean SslError.
    Xoshiro256 rng(101);
    for (int iter = 0; iter < 200; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        Bytes blob = rng.bytes(1 + rng.nextBelow(300));
        wires.clientEnd().write(blob);
        try {
            for (int i = 0; i < 10; ++i)
                server.advance();
        } catch (const SslError &) {
            // expected for malformed input
        }
        EXPECT_FALSE(server.handshakeDone()) << "iter " << iter;
    }
}

TEST(Fuzz, ServerSurvivesValidHeaderGarbageBody)
{
    // Well-formed record headers framing random handshake bytes.
    Xoshiro256 rng(102);
    for (int iter = 0; iter < 200; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        Bytes body = rng.bytes(1 + rng.nextBelow(120));
        Bytes record = {22, 3, 0,
                        static_cast<uint8_t>(body.size() >> 8),
                        static_cast<uint8_t>(body.size())};
        append(record, body);
        wires.clientEnd().write(record);
        try {
            for (int i = 0; i < 10; ++i)
                server.advance();
        } catch (const SslError &) {
        }
        EXPECT_FALSE(server.handshakeDone());
    }
}

TEST(Fuzz, HandshakeSurvivesSingleBitFlips)
{
    // Flip one bit somewhere in the client's first flight; the
    // handshake must either still complete (the bit landed somewhere
    // inert, e.g. inside the random) or fail with a typed error.
    Xoshiro256 rng(103);
    int completed = 0, rejected = 0;
    for (int iter = 0; iter < 60; ++iter) {
        BioPair wires;
        SslServer server(serverConfig(), wires.serverEnd());
        SslClient client(ClientConfig{}, wires.clientEnd());
        client.advance(); // hello in flight

        BioEndpoint se = wires.serverEnd();
        Bytes buf(4096);
        size_t n = se.peek(buf.data(), buf.size());
        ASSERT_GT(n, 10u);
        size_t pos = rng.nextBelow(n);
        buf[pos] ^= static_cast<uint8_t>(1u << rng.nextBelow(8));
        se.consume(n);
        wires.clientEnd().write(buf.data(), n);

        try {
            for (int i = 0; i < 30; ++i) {
                bool progress = client.advance();
                progress |= server.advance();
                if (client.handshakeDone() && server.handshakeDone())
                    break;
                if (!progress)
                    break; // deadlock counts as rejection here
            }
            if (client.handshakeDone() && server.handshakeDone())
                ++completed;
            else
                ++rejected;
        } catch (const SslError &) {
            ++rejected;
        }
    }
    // Both outcomes must occur across 60 random flips (a flip in the
    // client random is harmless; a flip in the length fields is not),
    // and none may crash.
    EXPECT_GT(completed + rejected, 0);
}

TEST(Fuzz, CertificateParserOnMutations)
{
    Xoshiro256 rng(104);
    Bytes good = test::testServerCert().encoded();
    int parsed = 0;
    for (int iter = 0; iter < 300; ++iter) {
        Bytes mutated = good;
        int flips = 1 + static_cast<int>(rng.nextBelow(4));
        for (int f = 0; f < flips; ++f)
            mutated[rng.nextBelow(mutated.size())] ^=
                static_cast<uint8_t>(1 + rng.nextBelow(255));
        try {
            pki::Certificate cert = pki::Certificate::parse(mutated);
            // Parsing may succeed (mutation hit an inert byte), but
            // then verification must almost always fail.
            if (cert.verify(test::testKey1024().pub) &&
                mutated != good) {
                // A successful forgery would be a real bug.
                FAIL() << "mutated certificate verified";
            }
            ++parsed;
        } catch (const std::exception &) {
            // malformed: fine
        }
    }
    SUCCEED() << parsed << " mutations still parsed";
}

TEST(Fuzz, CertificateParserOnTruncations)
{
    Bytes good = test::testServerCert().encoded();
    for (size_t len = 0; len < good.size(); len += 7) {
        Bytes cut(good.begin(), good.begin() + len);
        EXPECT_THROW(pki::Certificate::parse(cut), std::runtime_error)
            << "len " << len;
    }
}

TEST(Fuzz, HandshakeMessageParserOnTruncations)
{
    ClientHelloMsg hello;
    hello.random = Bytes(32, 1);
    hello.cipherSuites = {0x000a, 0x0035};
    Bytes good = hello.encode();
    for (size_t len = 0; len < good.size(); ++len) {
        Bytes cut(good.begin(), good.begin() + len);
        EXPECT_THROW(ClientHelloMsg::parse(cut), SslError)
            << "len " << len;
    }
}

TEST(Fuzz, HttpParserOnGarbage)
{
    Xoshiro256 rng(105);
    for (int iter = 0; iter < 200; ++iter) {
        Bytes blob = rng.bytes(rng.nextBelow(200));
        try {
            web::HttpRequest::parse(blob);
        } catch (const std::exception &) {
        }
        try {
            web::HttpResponse::parse(blob);
        } catch (const std::exception &) {
        }
    }
    SUCCEED();
}

TEST(Fuzz, RecordLayerOnCorruptedCiphertext)
{
    // Every corruption of an encrypted record must yield bad_record_mac
    // (or a padding error mapped to the same alert), never plaintext.
    Xoshiro256 rng(106);
    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Bytes mac = rng.bytes(suite.macLen());
    Bytes key = rng.bytes(suite.keyLen());
    Bytes iv = rng.bytes(suite.ivLen());

    for (int iter = 0; iter < 100; ++iter) {
        BioPair wires;
        RecordLayer sender(wires.clientEnd());
        RecordLayer receiver(wires.serverEnd());
        sender.enableSendCipher(suite, mac, key, iv);
        receiver.enableRecvCipher(suite, mac, key, iv);

        sender.send(ContentType::ApplicationData,
                    toBytes("sensitive payload"));
        Bytes wire(512);
        size_t n = wires.serverEnd().peek(wire.data(), wire.size());
        wires.serverEnd().consume(n);
        // Corrupt anywhere after the header.
        size_t pos = 5 + rng.nextBelow(n - 5);
        wire[pos] ^= static_cast<uint8_t>(1 + rng.nextBelow(255));
        wires.clientEnd().write(wire.data(), n);

        try {
            auto rec = receiver.receive();
            // The only acceptable non-throwing outcome is nullopt
            // (header corruption shrank the record below completeness).
            if (rec)
                FAIL() << "corrupted record accepted at pos " << pos;
        } catch (const SslError &) {
            // expected
        }
    }
}

TEST(Fuzz, DerParserOnRandomInput)
{
    Xoshiro256 rng(107);
    for (int iter = 0; iter < 500; ++iter) {
        Bytes blob = rng.bytes(rng.nextBelow(64));
        pki::DerParser p(blob);
        try {
            while (!p.atEnd()) {
                switch (p.peekTag()) {
                  case 0x02:
                    p.readInteger();
                    break;
                  case 0x04:
                    p.readOctetString();
                    break;
                  case 0x0c:
                    p.readUtf8();
                    break;
                  case 0x30:
                    p.readSequence();
                    break;
                  default:
                    throw std::runtime_error("unknown tag");
                }
            }
        } catch (const std::exception &) {
        }
    }
    SUCCEED();
}

} // anonymous namespace

file(REMOVE_RECURSE
  "CMakeFiles/ssla_ssl.dir/alert.cc.o"
  "CMakeFiles/ssla_ssl.dir/alert.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/bio.cc.o"
  "CMakeFiles/ssla_ssl.dir/bio.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/ciphersuite.cc.o"
  "CMakeFiles/ssla_ssl.dir/ciphersuite.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/client.cc.o"
  "CMakeFiles/ssla_ssl.dir/client.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/endpoint.cc.o"
  "CMakeFiles/ssla_ssl.dir/endpoint.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/handshake_hash.cc.o"
  "CMakeFiles/ssla_ssl.dir/handshake_hash.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/kdf.cc.o"
  "CMakeFiles/ssla_ssl.dir/kdf.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/kx.cc.o"
  "CMakeFiles/ssla_ssl.dir/kx.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/messages.cc.o"
  "CMakeFiles/ssla_ssl.dir/messages.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/record.cc.o"
  "CMakeFiles/ssla_ssl.dir/record.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/server.cc.o"
  "CMakeFiles/ssla_ssl.dir/server.cc.o.d"
  "CMakeFiles/ssla_ssl.dir/session.cc.o"
  "CMakeFiles/ssla_ssl.dir/session.cc.o.d"
  "libssla_ssl.a"
  "libssla_ssl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_ssl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

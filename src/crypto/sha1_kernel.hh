/**
 * @file
 * The SHA-1 block transform as a Meter-policy template (FIPS 180-2).
 *
 * SHA-1 runs 80 steps per 64-byte block against MD5's 64 and expands
 * the message schedule with rotates, which is why the paper measures it
 * as the more compute-intensive of the two hashes (Table 10/11).
 */

#ifndef SSLA_CRYPTO_SHA1_KERNEL_HH
#define SSLA_CRYPTO_SHA1_KERNEL_HH

#include <cstdint>

#include "perf/opcount.hh"
#include "util/endian.hh"

namespace ssla::crypto
{

/** SHA-1 chaining state. */
struct Sha1State
{
    uint32_t h[5];
};

/** Apply the SHA-1 compression function to one 64-byte block. */
template <class Meter>
void
sha1BlockT(Sha1State &s, const uint8_t block[64], Meter &m)
{
    using perf::OpClass;

    uint32_t w[80];
    for (int i = 0; i < 16; ++i)
        w[i] = load32be(block + 4 * i);
    for (int i = 16; i < 80; ++i) {
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
        if constexpr (Meter::counting) {
            // 4 schedule loads + store, 3 xors, 1 rotate.
            m.count(OpClass::MovL, 5);
            m.count(OpClass::XorL, 3);
            m.count(OpClass::RolL, 1);
        }
    }
    if constexpr (Meter::counting) {
        // 16 big-endian loads: load + bswap + store each.
        m.count(OpClass::MovL, 32);
        m.count(OpClass::Bswap, 16);
    }

    uint32_t a = s.h[0], b = s.h[1], c = s.h[2], d = s.h[3], e = s.h[4];

    for (int i = 0; i < 80; ++i) {
        uint32_t f, k;
        unsigned logic_xor, logic_and, logic_or;
        if (i < 20) {
            f = d ^ (b & (c ^ d)); // Ch
            k = 0x5a827999u;
            logic_xor = 2;
            logic_and = 1;
            logic_or = 0;
        } else if (i < 40) {
            f = b ^ c ^ d; // Parity
            k = 0x6ed9eba1u;
            logic_xor = 2;
            logic_and = 0;
            logic_or = 0;
        } else if (i < 60) {
            f = (b & c) | (d & (b | c)); // Maj
            k = 0x8f1bbcdcu;
            logic_xor = 0;
            logic_and = 2;
            logic_or = 2;
        } else {
            f = b ^ c ^ d; // Parity
            k = 0xca62c1d6u;
            logic_xor = 2;
            logic_and = 0;
            logic_or = 0;
        }
        uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
        if constexpr (Meter::counting) {
            m.count(OpClass::XorL, logic_xor);
            m.count(OpClass::AndL, logic_and);
            m.count(OpClass::OrL, logic_or);
            m.count(OpClass::RolL, 1);
            m.count(OpClass::RorL, 1); // rotl(b,30) emitted as rorl $2
            m.count(OpClass::MovL, 3); // w[i] load + register traffic
            m.count(OpClass::AddL, 3);
            m.count(OpClass::LeaL, 1); // fold of +k
        }
    }

    s.h[0] += a;
    s.h[1] += b;
    s.h[2] += c;
    s.h[3] += d;
    s.h[4] += e;
    if constexpr (Meter::counting) {
        m.count(OpClass::MovL, 10);
        m.count(OpClass::AddL, 5);
        m.count(OpClass::Push, 4);
        m.count(OpClass::Pop, 4);
        m.count(OpClass::Ret, 1);
    }
}

} // namespace ssla::crypto

#endif // SSLA_CRYPTO_SHA1_KERNEL_HH

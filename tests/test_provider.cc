/**
 * @file
 * Crypto provider layer tests: registry lookup, the instrumented
 * decorator's probe accounting, and the pipelined engine's record-layer
 * behavior (round-trips, fragment boundaries, wire equivalence with
 * the scalar path).
 */

#include <gtest/gtest.h>

#include "crypto/provider.hh"
#include "perf/probe.hh"
#include "ssl/record.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

/** Drain every byte currently queued at @p end. */
Bytes
drainWire(BioEndpoint end)
{
    Bytes wire(end.available());
    end.read(wire.data(), wire.size());
    return wire;
}

TEST(ProviderRegistry, CreatesEveryListedProvider)
{
    for (const std::string &name : crypto::providerNames()) {
        auto p = crypto::createProvider(name);
        ASSERT_TRUE(p) << name;
        EXPECT_EQ(p->name(), name);
    }
}

TEST(ProviderRegistry, ListsAllFourEngines)
{
    const auto &names = crypto::providerNames();
    EXPECT_EQ(names.size(), 4u);
    EXPECT_NE(std::find(names.begin(), names.end(), "scalar"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "instrumented"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "pipelined"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "fast"),
              names.end());
}

TEST(ProviderRegistry, BnEnginePerProvider)
{
    // Paper-era providers pin the bn32 profiling anchor; only the fast
    // provider switches the public-key math to bn64.
    EXPECT_EQ(crypto::createProvider("scalar")->bnEngine().limbBits(),
              32u);
    EXPECT_EQ(
        crypto::createProvider("instrumented")->bnEngine().limbBits(),
        32u);
    EXPECT_EQ(
        crypto::createProvider("pipelined")->bnEngine().limbBits(), 32u);
    EXPECT_EQ(crypto::createProvider("fast")->bnEngine().limbBits(),
              64u);
}

TEST(ProviderRegistry, UnknownNameThrows)
{
    EXPECT_THROW(crypto::createProvider("hardware"),
                 std::invalid_argument);
    EXPECT_THROW(crypto::createProvider(""), std::invalid_argument);
}

TEST(ProviderRegistry, DefaultIsInstrumentedScalar)
{
    EXPECT_STREQ(crypto::defaultProvider().name(), "instrumented");
    EXPECT_STREQ(crypto::scalarProvider().name(), "scalar");
}

TEST(ProviderRegistry, PipelinedFlagOnlyOnEngine)
{
    EXPECT_FALSE(crypto::createProvider("scalar")->pipelined());
    EXPECT_FALSE(crypto::createProvider("instrumented")->pipelined());
    EXPECT_TRUE(crypto::createProvider("pipelined")->pipelined());
}

TEST(InstrumentedProvider, ProbeCountsMatchOperations)
{
    auto instrumented = crypto::createProvider("instrumented");
    Xoshiro256 rng(11);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes data = rng.bytes(256);
    crypto::RecordMacSpec spec{crypto::DigestAlg::SHA1, rng.bytes(20),
                               ssl3Version};

    perf::PerfContext ctx;
    {
        perf::ContextScope scope(&ctx);
        auto enc = instrumented->createCipher(crypto::CipherAlg::Aes128Cbc,
                                              key, iv, true);
        auto dec = instrumented->createCipher(crypto::CipherAlg::Aes128Cbc,
                                              key, iv, false);
        for (int i = 0; i < 3; ++i)
            enc->process(data.data(), data.data(), data.size());
        dec->process(data.data(), data.data(), data.size());
        uint8_t mac[crypto::maxRecordMacLen];
        for (int i = 0; i < 5; ++i)
            instrumented->recordMac(spec, i, 23, ConstSpan{data}, mac);
    }

    const auto &counters = ctx.counters();
    ASSERT_TRUE(counters.count("pri_encryption"));
    ASSERT_TRUE(counters.count("pri_decryption"));
    ASSERT_TRUE(counters.count("mac"));
    EXPECT_EQ(counters.at("pri_encryption").calls, 3u);
    EXPECT_EQ(counters.at("pri_decryption").calls, 1u);
    EXPECT_EQ(counters.at("mac").calls, 5u);
    EXPECT_GT(ctx.cyclesFor("pri_encryption"), 0u);
    EXPECT_GT(ctx.cyclesFor("mac"), 0u);
}

TEST(InstrumentedProvider, OutputsMatchScalarKernels)
{
    auto instrumented = crypto::createProvider("instrumented");
    crypto::Provider &scalar = crypto::scalarProvider();
    Xoshiro256 rng(12);
    Bytes key = rng.bytes(16);
    Bytes iv = rng.bytes(16);
    Bytes data = rng.bytes(160);

    Bytes a = data, b = data;
    instrumented->createCipher(crypto::CipherAlg::Aes128Cbc, key, iv, true)
        ->process(a.data(), a.data(), a.size());
    scalar.createCipher(crypto::CipherAlg::Aes128Cbc, key, iv, true)
        ->process(b.data(), b.data(), b.size());
    EXPECT_EQ(a, b);

    for (uint16_t version : {ssl3Version, tls1Version}) {
        crypto::RecordMacSpec spec{crypto::DigestAlg::SHA1,
                                   Bytes(20, 0x5c), version};
        uint8_t mac_a[crypto::maxRecordMacLen];
        uint8_t mac_b[crypto::maxRecordMacLen];
        size_t len_a =
            instrumented->recordMac(spec, 7, 23, ConstSpan{data}, mac_a);
        size_t len_b =
            scalar.recordMac(spec, 7, 23, ConstSpan{data}, mac_b);
        ASSERT_EQ(len_a, len_b) << "version " << version;
        EXPECT_EQ(Bytes(mac_a, mac_a + len_a), Bytes(mac_b, mac_b + len_b))
            << "version " << version;
    }
}

TEST(PipelinedProvider, SubmittedMacMatchesSynchronous)
{
    crypto::PipelinedProvider engine;
    Xoshiro256 rng(13);
    Bytes data = rng.bytes(1000);
    for (uint16_t version : {ssl3Version, tls1Version}) {
        crypto::RecordMacSpec spec{crypto::DigestAlg::SHA1,
                                   rng.bytes(20), version};
        uint8_t sync[crypto::maxRecordMacLen];
        size_t sync_len =
            engine.recordMac(spec, 3, 23, ConstSpan{data}, sync);
        uint8_t async_mac[crypto::maxRecordMacLen];
        crypto::MacJob job = engine.submitRecordMac(
            spec, 3, 23, ConstSpan{data}, async_mac);
        size_t async_len = job.wait();
        ASSERT_EQ(async_len, sync_len) << "version " << version;
        EXPECT_EQ(Bytes(async_mac, async_mac + async_len),
                  Bytes(sync, sync + sync_len))
            << "version " << version;
        uint8_t ref[crypto::maxRecordMacLen];
        size_t ref_len = crypto::scalarProvider().recordMac(
            spec, 3, 23, ConstSpan{data}, ref);
        ASSERT_EQ(ref_len, sync_len);
        EXPECT_EQ(Bytes(ref, ref + ref_len), Bytes(sync, sync + sync_len));
    }
}

/** Deterministic payload distinct per length. */
Bytes
deterministicPayload(size_t len)
{
    Xoshiro256 rng(len * 2654435761u);
    return rng.bytes(len);
}

/** Two sender layers armed with identical keys, one per provider. */
struct DualSender
{
    crypto::PipelinedProvider engine;
    BioPair scalarWires, pipeWires;
    RecordLayer scalarSender{scalarWires.clientEnd(),
                             &crypto::scalarProvider()};
    RecordLayer pipeSender{pipeWires.clientEnd(), &engine};

    void
    arm(CipherSuiteId id, uint64_t seed = 21)
    {
        const CipherSuite &suite = cipherSuite(id);
        Xoshiro256 rng(seed);
        Bytes mac = rng.bytes(suite.macLen());
        Bytes key = rng.bytes(suite.keyLen());
        Bytes iv = rng.bytes(suite.ivLen());
        scalarSender.enableSendCipher(suite, mac, key, iv);
        pipeSender.enableSendCipher(suite, mac, key, iv);
    }
};

TEST(PipelinedProvider, WireIdenticalToScalarAcrossSuites)
{
    for (CipherSuiteId id : {CipherSuiteId::RSA_3DES_EDE_CBC_SHA,
                             CipherSuiteId::RSA_AES_128_CBC_SHA,
                             CipherSuiteId::RSA_RC4_128_SHA}) {
        DualSender d;
        d.arm(id);
        // Several sends so CBC chaining and sequence numbers advance
        // through the pipelined path; sizes cross fragment boundaries.
        for (size_t len : {100u, 16384u, 16385u, 40000u}) {
            Bytes payload = deterministicPayload(len);
            d.scalarSender.send(ContentType::ApplicationData, payload);
            d.pipeSender.send(ContentType::ApplicationData, payload);
            EXPECT_EQ(drainWire(d.scalarWires.serverEnd()),
                      drainWire(d.pipeWires.serverEnd()))
                << "suite " << static_cast<int>(id) << " len " << len;
        }
    }
}

TEST(PipelinedProvider, RecordLayerRoundTripWithInterleavedCcs)
{
    crypto::PipelinedProvider engine;
    BioPair wires;
    RecordLayer client(wires.clientEnd(), &engine);
    RecordLayer server(wires.serverEnd());

    const CipherSuite &suite =
        cipherSuite(CipherSuiteId::RSA_AES_128_CBC_SHA);
    Xoshiro256 rng(31);

    auto rekey = [&](uint64_t seed) {
        Xoshiro256 keys(seed);
        Bytes mac = keys.bytes(suite.macLen());
        Bytes key = keys.bytes(suite.keyLen());
        Bytes iv = keys.bytes(suite.ivLen());
        client.send(ContentType::ChangeCipherSpec, Bytes{1});
        auto ccs = server.receive();
        ASSERT_TRUE(ccs);
        ASSERT_EQ(ccs->type, ContentType::ChangeCipherSpec);
        client.enableSendCipher(suite, mac, key, iv);
        server.enableRecvCipher(suite, mac, key, iv);
    };

    auto roundTrip = [&](size_t len) {
        Bytes payload = rng.bytes(len);
        client.send(ContentType::ApplicationData, payload);
        Bytes got;
        while (got.size() < len) {
            auto rec = server.receive();
            ASSERT_TRUE(rec) << "len " << len;
            EXPECT_EQ(rec->type, ContentType::ApplicationData);
            append(got, rec->payload);
        }
        EXPECT_EQ(got, payload) << "len " << len;
        EXPECT_FALSE(server.receive());
    };

    rekey(100);
    // Fragment boundaries: exactly one full record, then one byte over
    // (the smallest payload that takes the overlapped path).
    roundTrip(16384);
    roundTrip(16385);
    roundTrip(100000);

    // A second ChangeCipherSpec mid-stream re-keys both directions;
    // the engine must keep working across the state switch.
    rekey(200);
    roundTrip(16385);
    roundTrip(50000);
}

TEST(PipelinedProvider, SendManyGathersLikeConcatenatedSend)
{
    DualSender d;
    d.arm(CipherSuiteId::RSA_AES_128_CBC_SHA, 41);

    Xoshiro256 rng(42);
    std::vector<Bytes> chunks;
    Bytes concat;
    // Chunk sizes chosen so fragments straddle buffer boundaries.
    for (size_t len : {5000u, 16000u, 1u, 0u, 30000u, 777u}) {
        chunks.push_back(rng.bytes(len));
        append(concat, chunks.back());
    }

    d.scalarSender.send(ContentType::ApplicationData, concat);
    d.pipeSender.sendMany(ContentType::ApplicationData, chunks);
    EXPECT_EQ(drainWire(d.scalarWires.serverEnd()),
              drainWire(d.pipeWires.serverEnd()));
}

} // anonymous namespace

/**
 * @file
 * Cross-module integration tests: many sequential secure connections,
 * suite interop matrix, handshake anatomy probe coverage, and an
 * end-to-end "bank transaction" style scenario.
 */

#include <gtest/gtest.h>

#include "perf/probe.hh"
#include "ssl/client.hh"
#include "ssl/server.hh"
#include "util/bytes.hh"
#include "util/rng.hh"

#include "testkeys.hh"

namespace
{

using namespace ssla;
using namespace ssla::ssl;

ServerConfig
serverConfig()
{
    ServerConfig cfg;
    cfg.certificate = test::testServerCert();
    cfg.privateKey = test::testKey1024().priv;
    return cfg;
}

TEST(Integration, ManySequentialConnections)
{
    ServerConfig scfg = serverConfig();
    SessionCache cache;
    scfg.sessionCache = &cache;
    Session last;

    for (int i = 0; i < 10; ++i) {
        BioPair wires;
        SslServer server(scfg, wires.serverEnd());
        ClientConfig ccfg;
        if (i % 2 == 1)
            ccfg.resumeSession = last; // resume every other connection
        SslClient client(ccfg, wires.clientEnd());
        runLockstep(client, server);
        EXPECT_EQ(client.resumed(), i % 2 == 1) << "conn " << i;

        Bytes msg = toBytes("request " + std::to_string(i));
        client.writeApplicationData(msg);
        auto got = server.readApplicationData();
        ASSERT_TRUE(got);
        EXPECT_EQ(*got, msg);
        last = client.session();
    }
    EXPECT_GE(cache.hits(), 4u);
}

TEST(Integration, SuiteInteropMatrix)
{
    // A client offering everything connects to servers that each
    // insist on one suite.
    for (CipherSuiteId id : allCipherSuites()) {
        ServerConfig scfg = serverConfig();
        scfg.suites = {id};
        BioPair wires;
        SslServer server(scfg, wires.serverEnd());
        ClientConfig ccfg; // offers all suites
        SslClient client(ccfg, wires.clientEnd());
        runLockstep(client, server);
        EXPECT_EQ(client.suite().id, id);

        client.writeApplicationData(toBytes("interop"));
        auto got = server.readApplicationData();
        ASSERT_TRUE(got);
        EXPECT_EQ(toString(*got), "interop");
    }
}

TEST(Integration, HandshakeAnatomyProbesFire)
{
    // The paper's Table 2 instrumentation: a full handshake must hit
    // every step probe and the expected crypto functions.
    perf::PerfContext ctx;
    ServerConfig scfg = serverConfig();
    BioPair wires;

    std::unique_ptr<SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        server = std::make_unique<SslServer>(scfg, wires.serverEnd());
    }
    ClientConfig ccfg;
    SslClient client(ccfg, wires.clientEnd());

    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            progress |= server->advance();
        }
        ASSERT_TRUE(progress);
    }

    const char *expected[] = {
        "step0_init", "step1_get_client_hello",
        "step2_send_server_hello", "step3_send_server_cert",
        "step4_send_server_done", "step5_get_client_kx",
        "step6_get_finished", "step7_send_cipher_spec",
        "step8_send_finished", "step9_flush",
        "rsa_private_decryption", "gen_master_secret", "gen_key_block",
        "final_finish_mac", "finish_mac", "init_finished_mac",
        "rand_pseudo_bytes", "mac", "pri_decryption", "pri_encryption",
        "BIO_flush",
    };
    for (const char *name : expected) {
        EXPECT_TRUE(ctx.counters().count(name))
            << "missing probe: " << name;
    }

    // RSA must dominate the handshake (Table 3's 90.4% claim).
    uint64_t rsa = ctx.cyclesFor("rsa_private_decryption");
    uint64_t total = ctx.cyclesFor(
        {"step0_init", "step1_get_client_hello",
         "step2_send_server_hello", "step3_send_server_cert",
         "step4_send_server_done", "step5_get_client_kx",
         "step6_get_finished", "step7_send_cipher_spec",
         "step8_send_finished", "step9_flush"});
    EXPECT_GT(rsa, total / 2);
}

TEST(Integration, FineGrainedBnProfile)
{
    // Table 8: with fine probes on, RSA decryption time should be
    // attributed mostly to bn_mul_add_words.
    perf::PerfContext ctx(true);
    const auto &kp = test::testKey1024();
    crypto::RandomPool pool(toBytes("bn-profile"));
    Bytes cipher =
        crypto::rsaPublicEncrypt(kp.pub, Bytes(48, 7), pool);
    {
        perf::ContextScope scope(&ctx);
        crypto::rsaPrivateDecrypt(*kp.priv, cipher);
    }
    ASSERT_TRUE(ctx.counters().count("bn_mul_add_words"));
    ASSERT_TRUE(ctx.counters().count("BN_from_montgomery"));
    uint64_t muladd = ctx.counters().at("bn_mul_add_words").exclusive;
    uint64_t total = ctx.totalExclusive();
    // The multiply kernel is the single largest consumer.
    for (const auto &[name, counter] : ctx.counters()) {
        if (name != "bn_mul_add_words") {
            EXPECT_GE(muladd, counter.exclusive) << name;
        }
    }
    EXPECT_GT(static_cast<double>(muladd), 0.25 * total);
}

TEST(Integration, BankTransactionScenario)
{
    // Small request/response pairs over one session — the "banking
    // transaction" workload the paper cites as handshake-dominated.
    ServerConfig scfg = serverConfig();
    BioPair wires;
    SslServer server(scfg, wires.serverEnd());
    ClientConfig ccfg;
    ccfg.trustedIssuer = &test::testKey1024().pub;
    SslClient client(ccfg, wires.clientEnd());
    runLockstep(client, server);

    for (int i = 0; i < 50; ++i) {
        Bytes req = toBytes("BALANCE acct=" + std::to_string(i));
        client.writeApplicationData(req);
        auto server_got = server.readApplicationData();
        ASSERT_TRUE(server_got);
        Bytes resp = toBytes("OK " + std::to_string(i * 100));
        server.writeApplicationData(resp);
        auto client_got = client.readApplicationData();
        ASSERT_TRUE(client_got);
        EXPECT_EQ(*client_got, resp);
    }
    client.close();
    server.close();
    EXPECT_FALSE(server.readApplicationData());
    EXPECT_FALSE(client.readApplicationData());
    EXPECT_TRUE(server.peerClosed());
    EXPECT_TRUE(client.peerClosed());
}

TEST(Integration, BulkTransferScenario)
{
    // B2B-style bulk exchange: the private-key encryption should now
    // dwarf everything else in per-record cost terms.
    ServerConfig scfg = serverConfig();
    BioPair wires;
    SslServer server(scfg, wires.serverEnd());
    SslClient client(ClientConfig{}, wires.clientEnd());
    runLockstep(client, server);

    Xoshiro256 rng(77);
    Bytes blob = rng.bytes(256 * 1024);
    server.writeApplicationData(blob);
    Bytes got;
    while (got.size() < blob.size()) {
        auto chunk = client.readApplicationData();
        ASSERT_TRUE(chunk);
        append(got, *chunk);
    }
    EXPECT_EQ(got, blob);
}

TEST(Integration, HandshakeSurvivesTrickleDelivery)
{
    // Relay every wire byte through one-byte writes: the record layer
    // and handshake reassembly must make progress incrementally.
    ServerConfig scfg = serverConfig();
    BioPair client_side; // client <-> relay
    BioPair server_side; // relay <-> server
    SslClient client(ClientConfig{}, client_side.clientEnd());
    SslServer server(scfg, server_side.serverEnd());

    // The relay endpoints: read what each party sent, forward in
    // 1..3-byte dribbles to the other.
    BioEndpoint from_client = client_side.serverEnd();
    BioEndpoint from_server = server_side.clientEnd();
    Xoshiro256 rng(31);

    auto pump = [&](BioEndpoint &src, BioEndpoint &dst) {
        uint8_t buf[4096];
        size_t n = src.read(buf, sizeof(buf));
        size_t off = 0;
        while (off < n) {
            size_t piece = std::min<size_t>(1 + rng.nextBelow(3),
                                            n - off);
            dst.write(buf + off, piece);
            off += piece;
        }
        return n > 0;
    };

    for (int i = 0; i < 20000; ++i) {
        bool moved = client.advance();
        moved |= pump(from_client, from_server);
        moved |= server.advance();
        moved |= pump(from_server, from_client);
        if (client.handshakeDone() && server.handshakeDone())
            break;
        ASSERT_TRUE(moved) << "trickle deadlock at iteration " << i;
    }
    EXPECT_TRUE(client.handshakeDone());
    EXPECT_TRUE(server.handshakeDone());

    client.writeApplicationData(toBytes("dribbled"));
    while (pump(from_client, from_server)) {
    }
    auto got = server.readApplicationData();
    ASSERT_TRUE(got);
    EXPECT_EQ(toString(*got), "dribbled");
}

TEST(Integration, IndependentConnectionsDontShareState)
{
    ServerConfig scfg = serverConfig();
    BioPair w1, w2;
    SslServer s1(scfg, w1.serverEnd());
    SslServer s2(scfg, w2.serverEnd());
    SslClient c1(ClientConfig{}, w1.clientEnd());
    SslClient c2(ClientConfig{}, w2.clientEnd());
    runLockstep(c1, s1);
    runLockstep(c2, s2);

    EXPECT_NE(c1.session().id, c2.session().id);
    EXPECT_NE(c1.session().masterSecret, c2.session().masterSecret);

    c1.writeApplicationData(toBytes("one"));
    c2.writeApplicationData(toBytes("two"));
    EXPECT_EQ(toString(*s1.readApplicationData()), "one");
    EXPECT_EQ(toString(*s2.readApplicationData()), "two");
}

} // anonymous namespace

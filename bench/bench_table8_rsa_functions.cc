/**
 * @file
 * Reproduces Table 8: the flat (exclusive-time) profile of the top
 * functions inside RSA-1024 decryption, dominated by
 * bn_mul_add_words.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "crypto/pkcs1.hh"
#include "perf/probe.hh"
#include "perf/report.hh"

using namespace ssla;
using namespace ssla::crypto;
using perf::TablePrinter;

int
main()
{
    constexpr int runs = 30;
    const auto &kp = bench::benchKey(1024);
    // Table 8's function names only exist on the paper-era core; a
    // bn64 key would profile bn64_* rows instead (see
    // bench_bn_backend for the side-by-side).
    std::printf("bn backend: %s (%u-bit limbs)\n",
                kp.priv->bnEngine().name(),
                kp.priv->bnEngine().limbBits());
    RandomPool pool(Bytes{9});
    Bytes cipher = rsaPublicEncrypt(kp.pub, Bytes(48, 0x17), pool);
    rsaPrivateDecrypt(*kp.priv, cipher); // warm-up

    perf::PerfContext ctx(true); // fine-grained: bn kernels report
    {
        perf::ContextScope scope(&ctx);
        for (int i = 0; i < runs; ++i)
            rsaPrivateDecrypt(*kp.priv, cipher);
    }

    uint64_t total = ctx.totalExclusive();
    std::vector<std::pair<std::string, perf::Counter>> rows(
        ctx.counters().begin(), ctx.counters().end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.exclusive > b.second.exclusive;
    });

    TablePrinter table(
        "Table 8: Top functions in RSA-1024 decryption "
        "(flat profile, exclusive cycles)");
    table.setHeader({"Function", "%", "calls/op", "paper anchor"});
    size_t printed = 0;
    for (const auto &[name, counter] : rows) {
        if (printed++ >= 10)
            break;
        const char *anchor = "";
        if (name == "bn_mul_add_words")
            anchor = "47.04 (top)";
        else if (name == "bn_sub_words")
            anchor = "22.61";
        else if (name == "BN_from_montgomery")
            anchor = "9.47";
        else if (name == "bn_add_words")
            anchor = "4.92";
        else if (name == "BN_usub")
            anchor = "3.24";
        else if (name == "BN_sqr")
            anchor = "1.04";
        table.addRow(
            {name,
             perf::fmtPct(100.0 * static_cast<double>(counter.exclusive) /
                          static_cast<double>(total), 2),
             perf::fmt("%.0f", static_cast<double>(counter.calls) / runs),
             anchor});
    }
    table.print();

    std::printf("\nNote: the paper's Oprofile flat profile attributes "
                "time the same way (children excluded); the headline "
                "claim is bn_mul_add_words as the dominant kernel.\n");
    return 0;
}

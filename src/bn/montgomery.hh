/**
 * @file
 * Montgomery multiplication context for odd moduli.
 *
 * RSA's modular exponentiation spends nearly all of its time in the
 * Montgomery product (built on bn_mul_add_words) and the subsequent
 * reduction (OpenSSL's BN_from_montgomery, visible in the paper's
 * Table 8), so the split between the two is kept explicit here.
 *
 * The hot path works on fixed-width raw limb vectors with scratch
 * buffers owned by the context (the BN_CTX idea), so the inner loops
 * allocate nothing; BigNum-typed wrappers cover general use.
 *
 * THREAD OWNERSHIP: a context is NOT thread-safe — every mul/sqr/
 * fromMont writes the shared scratch t_. Each thread must own its
 * contexts outright (the serve-layer CryptoPool keeps a full
 * RsaPrivateKey replica, and with it these contexts, per crypto
 * thread). Share moduli, not contexts. Debug builds assert this:
 * concurrent entry into a scratch-using operation aborts rather than
 * silently corrupting a computation.
 */

#ifndef SSLA_BN_MONTGOMERY_HH
#define SSLA_BN_MONTGOMERY_HH

#ifndef NDEBUG
#include <atomic>
#endif

#include "bn/bignum.hh"

namespace ssla::bn
{

/** Precomputed per-modulus state for Montgomery arithmetic. */
class MontgomeryCtx
{
  public:
    /** Fixed-width (modulus-sized) little-endian limb vector. */
    using Raw = std::vector<Limb>;

    /**
     * Build a context for @p modulus.
     * @throws std::domain_error unless the modulus is odd and > 1
     */
    explicit MontgomeryCtx(const BigNum &modulus);

    const BigNum &modulus() const { return n_; }

    /** Number of limbs in the modulus (the fixed Raw width). */
    size_t limbCount() const { return n_.size(); }

    // BigNum-typed interface.

    /** Map @p a (in [0, N)) into the Montgomery domain: a*R mod N. */
    BigNum toMont(const BigNum &a) const;

    /** Map out of the Montgomery domain: a*R^-1 mod N. */
    BigNum fromMont(const BigNum &a) const;

    /** Montgomery product: a*b*R^-1 mod N for a, b in the domain. */
    BigNum mul(const BigNum &a, const BigNum &b) const;

    /** Montgomery square: a*a*R^-1 mod N. */
    BigNum sqr(const BigNum &a) const;

    /** The value 1 in the Montgomery domain (R mod N). */
    const BigNum &one() const { return rModN_; }

    // Raw fixed-width interface (the allocation-free hot path).

    /** Widen a reduced BigNum to an n-limb Raw. */
    Raw toRaw(const BigNum &a) const;

    /** Collapse a Raw back into a BigNum. */
    BigNum fromRaw(const Raw &a) const;

    /** out = a*b*R^-1 mod N (out may not alias a or b). */
    void mulRaw(Raw &out, const Raw &a, const Raw &b) const;

    /** out = a^2*R^-1 mod N (out may not alias a). */
    void sqrRaw(Raw &out, const Raw &a) const;

  private:
    /**
     * Reduce the double-width product in scratch t_ into @p out:
     * out = t * R^-1 mod N. This is OpenSSL's BN_from_montgomery and
     * is probed as such.
     */
    void reduceScratch(Raw &out) const;

    BigNum n_;     ///< the modulus
    Limb n0_;      ///< -N^-1 mod 2^32
    BigNum rr_;    ///< R^2 mod N (for toMont)
    BigNum rModN_; ///< R mod N (Montgomery representation of 1)
    mutable Raw t_; ///< 2n+1-limb product/reduction scratch

#ifndef NDEBUG
    friend class ScratchGuard;
    /** Debug-only reentrancy flag asserting single-thread ownership. */
    mutable std::atomic<unsigned> scratchBusy_{0};
#endif
};

} // namespace ssla::bn

#endif // SSLA_BN_MONTGOMERY_HH

/**
 * @file
 * Simplified X.509-style certificates with real RSA signatures.
 *
 * The certificate body (TBS) carries serial, issuer/subject names,
 * validity and an RSA public key, DER-encoded; the signature is
 * PKCS#1 v1.5 over MD5(tbs) || SHA1(tbs) — the combined-digest scheme
 * SSLv3-era RSA signing used. Parsing + verification is what the paper
 * accounts as "X509 functions" (232 kcycles in Table 2's step 3).
 */

#ifndef SSLA_PKI_CERT_HH
#define SSLA_PKI_CERT_HH

#include <string>

#include "crypto/rsa.hh"
#include "pki/der.hh"

namespace ssla::pki
{

/** The signed fields of a certificate. */
struct CertificateInfo
{
    uint64_t serial = 1;
    std::string issuer;
    std::string subject;
    uint64_t notBefore = 0; ///< seconds since epoch
    uint64_t notAfter = 0;
    crypto::RsaPublicKey publicKey;
};

/** A parsed or freshly issued certificate. */
class Certificate
{
  public:
    Certificate() = default;

    /**
     * Issue a certificate: encode @p info and sign it with
     * @p issuer_key (self-signed when the key matches info.publicKey).
     */
    static Certificate issue(const CertificateInfo &info,
                             const crypto::RsaPrivateKey &issuer_key);

    /**
     * Parse a wire-format certificate.
     * @throws std::runtime_error on malformed input
     */
    static Certificate parse(const Bytes &encoded);

    /** Serialize to wire format. */
    const Bytes &encoded() const { return encoded_; }

    const CertificateInfo &info() const { return info_; }

    /** Check the signature against the issuer's public key. */
    bool verify(const crypto::RsaPublicKey &issuer_key) const;

    /** Validity-window check. */
    bool validAt(uint64_t unix_time) const;

    /** True when the certificate verifies under its own key. */
    bool isSelfSigned() const { return verify(info_.publicKey); }

  private:
    static Bytes encodeTbs(const CertificateInfo &info);
    static Bytes tbsDigest(const Bytes &tbs);

    CertificateInfo info_;
    Bytes tbs_;       ///< the signed body, as encoded
    Bytes signature_; ///< RSA signature over tbsDigest(tbs_)
    Bytes encoded_;   ///< full wire form
};

/**
 * Verify a certificate chain, leaf first: every certificate must be
 * signed by the next one's key, names must link (issuer of cert i ==
 * subject of cert i+1), and the final certificate must verify under
 * @p trusted_root (or be self-signed when @p trusted_root is null).
 *
 * @param chain parsed certificates, leaf first
 * @param trusted_root the root-of-trust key, or null to accept any
 *        self-signed terminal certificate
 * @param at validity-check time (0 disables the window check)
 * @return true when every link holds
 */
bool verifyChain(const std::vector<Certificate> &chain,
                 const crypto::RsaPublicKey *trusted_root,
                 uint64_t at = 0);

} // namespace ssla::pki

#endif // SSLA_PKI_CERT_HH

# Empty compiler generated dependencies file for bench_table2_handshake_anatomy.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/ablation.cc" "src/perf/CMakeFiles/ssla_perf.dir/ablation.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/ablation.cc.o.d"
  "/root/repo/src/perf/cpimodel.cc" "src/perf/CMakeFiles/ssla_perf.dir/cpimodel.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/cpimodel.cc.o.d"
  "/root/repo/src/perf/enginesim.cc" "src/perf/CMakeFiles/ssla_perf.dir/enginesim.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/enginesim.cc.o.d"
  "/root/repo/src/perf/opcount.cc" "src/perf/CMakeFiles/ssla_perf.dir/opcount.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/opcount.cc.o.d"
  "/root/repo/src/perf/probe.cc" "src/perf/CMakeFiles/ssla_perf.dir/probe.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/probe.cc.o.d"
  "/root/repo/src/perf/report.cc" "src/perf/CMakeFiles/ssla_perf.dir/report.cc.o" "gcc" "src/perf/CMakeFiles/ssla_perf.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ssla_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Reproduces Figure 2: the crypto-library time breakdown (public key /
 * private key / hashing / other) as the request file size grows from
 * 1 KB to 32 KB. The paper's headline shape: ~90% public key at 1 KB,
 * with the private-key and hashing shares growing with file size.
 */

#include <cstdio>

#include "perf/report.hh"
#include "web/httpsim.hh"

using namespace ssla;
using namespace ssla::web;
using perf::TablePrinter;

int
main()
{
    WebSimConfig cfg;
    WebSimulator sim(cfg);
    sim.runTransaction(1024); // warm-up

    TablePrinter table(
        "Figure 2: Time breakdown in crypto library vs request size "
        "(DES-CBC3-SHA, full handshake per request)");
    table.setHeader({"size", "public", "private", "hash", "other"});

    for (size_t kb : {1, 2, 4, 8, 16, 32}) {
        TransactionStats s = sim.runWorkload(10, kb * 1024);
        double total = static_cast<double>(s.cryptoTotal);
        auto pct = [&](uint64_t v) {
            return perf::fmtPct(100.0 * static_cast<double>(v) / total);
        };
        table.addRow({perf::fmt("%zuKB", kb), pct(s.cryptoPublic),
                      pct(s.cryptoPrivate), pct(s.cryptoHash),
                      pct(s.cryptoOther)});
    }
    table.print();
    std::printf("\npaper anchors: public ~90%% at 1KB and decreasing; "
                "private 2.4%% at 1KB and increasing with size\n");
    return 0;
}

#include "obs/analysis/json.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ssla::obs::analysis
{

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, size_t lineBase)
        : text_(text), lineBase_(lineBase)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw JsonError(msg, lineBase_ + line_, pos_ - lineStart_ + 1);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
                lineStart_ = pos_;
            } else if (c == ' ' || c == '\t' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            Json v;
            v.type = Json::Type::String;
            v.str = parseString();
            return v;
        }
        case 't':
            if (consumeLiteral("true")) {
                Json v;
                v.type = Json::Type::Bool;
                v.b = true;
                return v;
            }
            fail("bad literal");
        case 'f':
            if (consumeLiteral("false")) {
                Json v;
                v.type = Json::Type::Bool;
                v.b = false;
                return v;
            }
            fail("bad literal");
        case 'n':
            if (consumeLiteral("null"))
                return Json{};
            fail("bad literal");
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            // The checker's explicit stance: NaN/Infinity never valid.
            if (c == 'N' || c == 'I')
                fail("non-finite literal (NaN/Infinity) rejected");
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    Json
    parseObject()
    {
        Json v;
        v.type = Json::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.obj.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    parseArray()
    {
        Json v;
        v.type = Json::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.arr.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n')
                fail("raw newline in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int k = 0; k < 4; ++k) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // UTF-8 encode; surrogate pairs are passed through as
                // two 3-byte sequences (the producers never emit them).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default: fail("bad escape character");
            }
        }
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            ++pos_;
        }
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9'))
            fail("bad number");
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                fail("bad fraction");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !(text_[pos_] >= '0' && text_[pos_] <= '9'))
                fail("bad exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        std::string token(text_.substr(start, pos_ - start));
        Json v;
        if (integral) {
            errno = 0;
            if (negative) {
                long long ll = std::strtoll(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    v.type = Json::Type::Int;
                    v.i = ll;
                    return v;
                }
            } else {
                unsigned long long ull =
                    std::strtoull(token.c_str(), nullptr, 10);
                if (errno != ERANGE) {
                    if (ull <=
                        static_cast<unsigned long long>(INT64_MAX)) {
                        v.type = Json::Type::Int;
                        v.i = static_cast<int64_t>(ull);
                        v.u = ull;
                    } else {
                        v.type = Json::Type::Uint;
                        v.u = ull;
                    }
                    return v;
                }
            }
            // Fall through to double on integer overflow.
        }
        v.type = Json::Type::Double;
        v.d = std::strtod(token.c_str(), nullptr);
        return v;
    }

    std::string_view text_;
    size_t lineBase_;
    size_t pos_ = 0;
    size_t line_ = 1;
    size_t lineStart_ = 0;
};

} // anonymous namespace

Json
parseJson(std::string_view text, size_t lineBase)
{
    return Parser(text, lineBase).parseDocument();
}

} // namespace ssla::obs::analysis

#include "web/kernelmodel.hh"

namespace ssla::web
{

uint64_t
estimatePackets(uint64_t wire_bytes, const KernelModelParams &p)
{
    // Data segments plus delayed ACKs (one per two data segments).
    uint64_t data_segments = (wire_bytes + p.mss - 1) / p.mss;
    return data_segments + data_segments / 2;
}

ModeledCycles
modelNonSslCycles(const TrafficShape &traffic, const KernelModelParams &p)
{
    ModeledCycles out;
    // Connection setup/teardown adds the 3-way handshake and FIN
    // exchange on top of the data segments.
    uint64_t packets = traffic.packets + traffic.connections * 7;

    out.kernel = p.kernelPerConnection * traffic.connections +
                 p.kernelPerPacket * packets +
                 p.kernelPerByte * traffic.wireBytes;
    out.httpd = p.httpdPerRequest * traffic.requests +
                p.httpdPerByte * traffic.wireBytes;
    out.other = p.otherPerConnection * traffic.connections +
                p.otherPerByte * traffic.wireBytes;
    return out;
}

} // namespace ssla::web

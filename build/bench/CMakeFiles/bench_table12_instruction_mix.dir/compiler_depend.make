# Empty compiler generated dependencies file for bench_table12_instruction_mix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_aes.dir/bench_table5_aes.cc.o"
  "CMakeFiles/bench_table5_aes.dir/bench_table5_aes.cc.o.d"
  "bench_table5_aes"
  "bench_table5_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

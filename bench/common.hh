/**
 * @file
 * Shared helpers for the table/figure reproduction benches: cycle
 * timing with repetition, fixtures (keys, certificates) and common
 * formatting.
 */

#ifndef SSLA_BENCH_COMMON_HH
#define SSLA_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/provider.hh"
#include "crypto/rsa.hh"
#include "pki/cert.hh"
#include "util/cycles.hh"
#include "util/rng.hh"

namespace ssla::bench
{

/**
 * Spin for ~100ms so the core reaches its sustained frequency before
 * cycle measurements start (TSC ticks at constant rate, so work done
 * at a ramping clock reads as inflated cycle counts).
 */
inline void
warmUpCpu()
{
    uint64_t t0 = rdcycles();
    uint64_t budget = static_cast<uint64_t>(cycleHz() * 0.1);
    volatile uint64_t sink = 0;
    while (rdcycles() - t0 < budget)
        sink = sink * 31 + 7;
}

/** Median of per-call cycle measurements over @p reps runs. */
template <class F>
uint64_t
medianCycles(F &&fn, int reps = 15)
{
    std::vector<uint64_t> samples;
    samples.reserve(reps);
    for (int i = 0; i < reps; ++i) {
        uint64_t t0 = rdcycles();
        fn();
        samples.push_back(rdcycles() - t0);
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

/** Average cycles per call over a timed batch of @p iters calls. */
template <class F>
double
cyclesPerCall(F &&fn, int iters)
{
    // Warm up caches and branch predictors.
    fn();
    uint64_t t0 = rdcycles();
    for (int i = 0; i < iters; ++i)
        fn();
    return static_cast<double>(rdcycles() - t0) / iters;
}

/** Throughput in MB/s for a kernel processing @p bytes per call. */
template <class F>
double
throughputMBps(F &&fn, size_t bytes, int iters)
{
    double cycles = cyclesPerCall(fn, iters);
    double seconds = cycles / cycleHz();
    return (static_cast<double>(bytes) / 1e6) / seconds;
}

/**
 * Provider the benches construct cipher/digest objects through: the
 * bare scalar kernels, so kernel measurements carry no
 * instrumentation wrappers.
 */
inline crypto::Provider &
benchProvider()
{
    return crypto::scalarProvider();
}

/** A deterministic RSA key of @p bits (cached per size). */
inline const crypto::RsaKeyPair &
benchKey(size_t bits)
{
    static crypto::RsaKeyPair k512 =
        crypto::rsaGenerateKey(512, [](uint8_t *o, size_t l) {
            static Xoshiro256 rng(0xb512);
            rng.fill(o, l);
        });
    static crypto::RsaKeyPair k1024 =
        crypto::rsaGenerateKey(1024, [](uint8_t *o, size_t l) {
            static Xoshiro256 rng(0xb1024);
            rng.fill(o, l);
        });
    return bits == 512 ? k512 : k1024;
}

/** Deterministic pseudo-random payload of @p len bytes. */
inline Bytes
benchPayload(size_t len, uint64_t seed = 0xda7a)
{
    Xoshiro256 rng(seed);
    return rng.bytes(len);
}

/**
 * Streaming JSON emitter shared by the machine-readable benches
 * (bench_engine_pipeline, bench_serve_scale), so the BENCH_*.json
 * documents all follow one formatting discipline: two-space indent,
 * commas managed by nesting level, fixed-precision doubles.
 *
 * Usage:
 *   JsonWriter j;                     // writes to stdout
 *   j.beginObject();
 *   j.field("bench", "serve_scale").field("smoke", false);
 *   j.beginArray("results");
 *   j.beginObject().field("workers", 4).endObject();
 *   j.endArray();
 *   j.endObject();                    // prints trailing newline
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::FILE *out = stdout) : out_(out) {}

    JsonWriter &
    beginObject(const char *key = nullptr)
    {
        prefix(key);
        std::fputc('{', out_);
        depth_.push_back(0);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        closeScope('}');
        return *this;
    }

    JsonWriter &
    beginArray(const char *key = nullptr)
    {
        prefix(key);
        std::fputc('[', out_);
        depth_.push_back(0);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        closeScope(']');
        return *this;
    }

    JsonWriter &
    field(const char *key, const char *value)
    {
        prefix(key);
        quoted(value);
        return *this;
    }

    JsonWriter &
    field(const char *key, const std::string &value)
    {
        return field(key, value.c_str());
    }

    JsonWriter &
    field(const char *key, bool value)
    {
        prefix(key);
        std::fputs(value ? "true" : "false", out_);
        return *this;
    }

    JsonWriter &
    field(const char *key, double value, int precision = 3)
    {
        prefix(key);
        std::fprintf(out_, "%.*f", precision, value);
        return *this;
    }

    JsonWriter &
    field(const char *key, uint64_t value)
    {
        prefix(key);
        std::fprintf(out_, "%llu",
                     static_cast<unsigned long long>(value));
        return *this;
    }

    JsonWriter &
    field(const char *key, int value)
    {
        prefix(key);
        std::fprintf(out_, "%d", value);
        return *this;
    }

    /** Bare array element (string). */
    JsonWriter &
    element(const char *value)
    {
        prefix(nullptr);
        quoted(value);
        return *this;
    }

    /** Bare array element (integer). */
    JsonWriter &
    element(uint64_t value)
    {
        prefix(nullptr);
        std::fprintf(out_, "%llu",
                     static_cast<unsigned long long>(value));
        return *this;
    }

    /** Bare array element (fixed-precision double). */
    JsonWriter &
    element(double value, int precision = 3)
    {
        prefix(nullptr);
        std::fprintf(out_, "%.*f", precision, value);
        return *this;
    }

  private:
    void
    prefix(const char *key)
    {
        if (!depth_.empty()) {
            if (depth_.back()++)
                std::fputc(',', out_);
            std::fputc('\n', out_);
            for (size_t i = 0; i < depth_.size(); ++i)
                std::fputs("  ", out_);
        }
        if (key) {
            quoted(key);
            std::fputs(": ", out_);
        }
    }

    void
    closeScope(char bracket)
    {
        bool had_members = depth_.back() > 0;
        depth_.pop_back();
        if (had_members) {
            std::fputc('\n', out_);
            for (size_t i = 0; i < depth_.size(); ++i)
                std::fputs("  ", out_);
        }
        std::fputc(bracket, out_);
        if (depth_.empty())
            std::fputc('\n', out_);
    }

    void
    quoted(const char *s)
    {
        std::fputc('"', out_);
        for (; *s; ++s) {
            unsigned char c = static_cast<unsigned char>(*s);
            switch (c) {
              case '"':
                std::fputs("\\\"", out_);
                break;
              case '\\':
                std::fputs("\\\\", out_);
                break;
              case '\b':
                std::fputs("\\b", out_);
                break;
              case '\f':
                std::fputs("\\f", out_);
                break;
              case '\n':
                std::fputs("\\n", out_);
                break;
              case '\r':
                std::fputs("\\r", out_);
                break;
              case '\t':
                std::fputs("\\t", out_);
                break;
              default:
                // RFC 8259: control characters MUST be escaped; a raw
                // one (say a stray byte in a name) would corrupt the
                // whole BENCH_*.json document.
                if (c < 0x20)
                    std::fprintf(out_, "\\u%04x", c);
                else
                    std::fputc(c, out_);
                break;
            }
        }
        std::fputc('"', out_);
    }

    std::FILE *out_;
    std::vector<int> depth_; ///< member count per open scope
};

} // namespace ssla::bench

#endif // SSLA_BENCH_COMMON_HH

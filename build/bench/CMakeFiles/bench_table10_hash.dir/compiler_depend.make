# Empty compiler generated dependencies file for bench_table10_hash.
# This may be replaced when dependencies are built.

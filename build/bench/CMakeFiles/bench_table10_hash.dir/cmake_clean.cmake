file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_hash.dir/bench_table10_hash.cc.o"
  "CMakeFiles/bench_table10_hash.dir/bench_table10_hash.cc.o.d"
  "bench_table10_hash"
  "bench_table10_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

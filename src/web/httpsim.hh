/**
 * @file
 * The simulated HTTPS web server — this reproduction's stand-in for
 * the paper's Apache + mod_ssl + curl testbed (Section 3.1).
 *
 * A transaction runs a real SSL handshake and bulk transfer between an
 * in-process client and server over memory BIOs; every cycle the
 * server spends in SSL and crypto code is measured with probes, while
 * the kernel/httpd/other rows of Table 1 come from the calibrated
 * model in kernelmodel.hh.
 */

#ifndef SSLA_WEB_HTTPSIM_HH
#define SSLA_WEB_HTTPSIM_HH

#include <memory>
#include <string>

#include "ssl/client.hh"
#include "ssl/server.hh"
#include "web/http.hh"
#include "web/kernelmodel.hh"

namespace ssla::web
{

/** Per-transaction (or aggregated) cycle accounting. */
struct TransactionStats
{
    // Measured on the server side, in cycles.
    uint64_t sslTotal = 0;    ///< all server SSL processing
    uint64_t cryptoTotal = 0; ///< crypto portion of the above

    // Crypto broken into the paper's Figure 2 / Table 3 categories.
    uint64_t cryptoPublic = 0;
    uint64_t cryptoPrivate = 0;
    uint64_t cryptoHash = 0;
    uint64_t cryptoOther = 0;

    // Modeled rows (see kernelmodel.hh).
    double kernelCycles = 0.0;
    double httpdCycles = 0.0;
    double otherCycles = 0.0;

    // Traffic.
    uint64_t wireBytes = 0;
    uint64_t packets = 0;
    uint64_t transactions = 0;
    uint64_t resumedHandshakes = 0;

    /** Total transaction cycles (measured + modeled). */
    double total() const;

    /** Cycles attributed to libssl (SSL minus crypto). */
    uint64_t libssl() const { return sslTotal - cryptoTotal; }

    /** Accumulate another transaction's stats. */
    void merge(const TransactionStats &other);
};

/** Configuration of the simulated server + client pair. */
struct WebSimConfig
{
    ssl::CipherSuiteId suite =
        ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA;
    size_t rsaBits = 1024;
    KernelModelParams model;
    /** Deterministic seed for key generation and randoms. */
    uint64_t seed = 0x55aa55aa;
    /**
     * Crypto provider registry name for both endpoints (see
     * crypto/provider.hh). The default keeps the dispatch-layer
     * probes the Table 1 / Figure 2 breakdowns aggregate.
     */
    std::string provider = "instrumented";
    /**
     * Registry the server's /metrics route exposes in Prometheus text
     * format (see obs::writePrometheusText); null scrapes the global
     * registry.
     */
    obs::MetricsRegistry *metricsRegistry = nullptr;
};

/**
 * An in-process HTTPS server/client pair that can execute complete
 * transactions and account for where the server's cycles go.
 */
class WebSimulator
{
  public:
    explicit WebSimulator(const WebSimConfig &config);
    ~WebSimulator();

    /**
     * Execute one HTTPS transaction: handshake (full, or resumed when
     * @p resume_session is true and a previous transaction populated
     * the session cache), GET request, response of @p file_size bytes,
     * close. Returns the server-side stats.
     */
    TransactionStats runTransaction(size_t file_size,
                                    bool resume_session = false);

    /** Run @p count transactions and return merged stats. */
    TransactionStats runWorkload(size_t count, size_t file_size,
                                 double resume_fraction = 0.0);

    /**
     * Execute one persistent (keep-alive) session: a single handshake
     * followed by @p requests GET/response exchanges of @p file_size
     * bytes each over the same connection — the paper's "long
     * sessions of data exchange (e.g. B2B sessions)" workload, where
     * bulk encryption rather than the handshake dominates.
     */
    TransactionStats runSession(size_t requests, size_t file_size,
                                bool resume_session = false);

    /**
     * Execute one streaming tunnel: a single handshake, then the
     * server pushes @p total_bytes of opaque payload to the client in
     * gather-writes of @p chunk_bytes (a VPN-over-TLS / long download
     * shape, where per-record data-plane overhead — not the handshake
     * — bounds throughput). Each chunk goes out as scattered spans
     * through the zero-copy send path. Cycle accounting as in
     * runSession.
     */
    TransactionStats runTunnel(size_t total_bytes, size_t chunk_bytes);

    /**
     * One complete HTTPS GET of @p path over a fresh connection,
     * returning the server's parsed response. "/metrics" hits the
     * Prometheus text endpoint (metrics of the configured registry);
     * any other path serves @p file_size bytes of page data.
     */
    HttpResponse fetch(const std::string &path, size_t file_size = 0);

    const crypto::RsaPublicKey &serverPublicKey() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace ssla::web

#endif // SSLA_WEB_HTTPSIM_HH

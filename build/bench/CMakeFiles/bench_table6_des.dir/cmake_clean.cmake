file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_des.dir/bench_table6_des.cc.o"
  "CMakeFiles/bench_table6_des.dir/bench_table6_des.cc.o.d"
  "bench_table6_des"
  "bench_table6_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

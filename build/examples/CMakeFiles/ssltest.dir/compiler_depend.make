# Empty compiler generated dependencies file for ssltest.
# This may be replaced when dependencies are built.

# Empty dependencies file for ssla_ssl.
# This may be replaced when dependencies are built.

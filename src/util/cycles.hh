/**
 * @file
 * Cycle-accurate timing, the reproduction's replacement for the paper's
 * "read timestamp instruction" methodology (Section 3.2).
 *
 * On x86-64 we read the TSC directly; elsewhere we fall back to
 * steady_clock scaled by a calibrated frequency so all reports stay in
 * units of CPU cycles like the paper's tables.
 */

#ifndef SSLA_UTIL_CYCLES_HH
#define SSLA_UTIL_CYCLES_HH

#include <cstdint>

namespace ssla
{

/** Read the current cycle counter. */
uint64_t rdcycles();

/**
 * Estimated cycle-counter frequency in Hz (calibrated once, lazily).
 *
 * Used to convert cycle counts into seconds for throughput reporting
 * (Table 11 of the paper).
 */
double cycleHz();

/** Convert a cycle delta to seconds using the calibrated frequency. */
double cyclesToSeconds(uint64_t cycles);

/**
 * CPU time consumed by the calling thread, expressed in cycles
 * (CLOCK_THREAD_CPUTIME_ID scaled by cycleHz(); falls back to
 * rdcycles() where that clock is unavailable).
 *
 * Unlike rdcycles(), this excludes time the thread spent descheduled
 * and work done by other threads, so it isolates the "main CPU" cost
 * when crypto is offloaded to a worker — the quantity the paper's
 * Figure 6 overlap analysis frees up, independent of whether the host
 * actually has a spare core to run the worker on.
 */
uint64_t threadCpuCycles();

/**
 * Simple start/stop cycle timer.
 *
 * The paper brackets code regions with rdtsc reads; CycleTimer is the
 * same idea with accumulate/reset convenience for repeated regions.
 */
class CycleTimer
{
  public:
    void start() { startTime_ = rdcycles(); }

    /** Stop and add the elapsed span to the accumulated total. */
    uint64_t
    stop()
    {
        uint64_t delta = rdcycles() - startTime_;
        total_ += delta;
        return delta;
    }

    uint64_t total() const { return total_; }
    void reset() { total_ = 0; }

  private:
    uint64_t startTime_ = 0;
    uint64_t total_ = 0;
};

} // namespace ssla

#endif // SSLA_UTIL_CYCLES_HH

/**
 * @file
 * Key-exchange layer tests: the suite→factory registry, role objects
 * driven directly (outside any handshake), and the negative paths —
 * a tampered ServerKeyExchange signature, an implausible DH group,
 * unknown factory lookups, and the resumption null object's refusal
 * to exchange keys.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/provider.hh"
#include "ssl/alert.hh"
#include "ssl/kx.hh"
#include "ssl/messages.hh"
#include "testkeys.hh"
#include "util/bytes.hh"

namespace
{

using namespace ssla;

/** A context over the scalar provider with fixed hello randoms. */
struct KxRig
{
    crypto::RandomPool pool{toBytes("kx-unit-tests")};
    Bytes clientRandom = pool.bytes(32);
    Bytes serverRandom = pool.bytes(32);
    ssl::KxContext ctx{crypto::scalarProvider(), pool, clientRandom,
                       serverRandom};

    const ssl::CipherSuite &
    suite(ssl::CipherSuiteId id) const
    {
        return ssl::cipherSuite(id);
    }
};

// ---------------------------------------------------------------------
// Factory registry

TEST(KxFactory, EveryKindHasARegisteredRow)
{
    for (ssl::KxKind kind :
         {ssl::KxKind::Rsa, ssl::KxKind::DheRsa,
          ssl::KxKind::Resumption}) {
        const ssl::KxFactory &f = ssl::kxFactory(kind);
        EXPECT_EQ(f.kind, kind);
        ASSERT_NE(f.name, nullptr);
        ASSERT_NE(f.makeServer, nullptr);
        ASSERT_NE(f.makeClient, nullptr);
        auto server = f.makeServer();
        auto client = f.makeClient();
        ASSERT_TRUE(server);
        ASSERT_TRUE(client);
        EXPECT_EQ(server->kind(), kind);
        EXPECT_EQ(client->kind(), kind);
        EXPECT_STREQ(server->name(), f.name);
        EXPECT_STREQ(client->name(), f.name);
    }
}

TEST(KxFactory, UnknownKindThrows)
{
    EXPECT_THROW(ssl::kxFactory(static_cast<ssl::KxKind>(0x7f)),
                 std::invalid_argument);
}

TEST(KxFactory, SuiteLookupMatchesSuiteKind)
{
    const auto &rsa = ssl::cipherSuite(
        ssl::CipherSuiteId::RSA_3DES_EDE_CBC_SHA);
    const auto &dhe = ssl::cipherSuite(
        ssl::CipherSuiteId::DHE_RSA_3DES_EDE_CBC_SHA);
    EXPECT_EQ(rsa.kxFactory().kind, ssl::KxKind::Rsa);
    EXPECT_EQ(dhe.kxFactory().kind, ssl::KxKind::DheRsa);

    // makeServerKx/makeClientKx honor the resuming flag by swapping in
    // the resumption row regardless of the negotiated suite.
    EXPECT_EQ(ssl::makeServerKx(rsa)->kind(), ssl::KxKind::Rsa);
    EXPECT_EQ(ssl::makeServerKx(rsa, true)->kind(),
              ssl::KxKind::Resumption);
    EXPECT_EQ(ssl::makeClientKx(dhe, true)->kind(),
              ssl::KxKind::Resumption);
}

TEST(KxFactory, RoleTraitsMatchTheProtocol)
{
    auto rsa_s = ssl::kxFactory(ssl::KxKind::Rsa).makeServer();
    auto dhe_s = ssl::kxFactory(ssl::KxKind::DheRsa).makeServer();
    auto rsa_c = ssl::kxFactory(ssl::KxKind::Rsa).makeClient();
    auto dhe_c = ssl::kxFactory(ssl::KxKind::DheRsa).makeClient();

    // Only DHE sends/expects a ServerKeyExchange flight; only RSA key
    // transport embeds the offered version in the pre-master (the
    // rollback defence).
    EXPECT_FALSE(rsa_s->sendsServerKeyExchange());
    EXPECT_TRUE(dhe_s->sendsServerKeyExchange());
    EXPECT_FALSE(rsa_c->expectsServerKeyExchange());
    EXPECT_TRUE(dhe_c->expectsServerKeyExchange());
    EXPECT_TRUE(rsa_s->premasterCarriesVersion());
    EXPECT_FALSE(dhe_s->premasterCarriesVersion());
}

// ---------------------------------------------------------------------
// Role objects driven directly

TEST(KxRoles, RsaRoundTripRecoversThePremaster)
{
    KxRig rig;
    const auto &kp = test::testKey1024();
    auto client = ssl::kxFactory(ssl::KxKind::Rsa).makeClient();
    auto server = ssl::kxFactory(ssl::KxKind::Rsa).makeServer();

    Bytes premaster;
    Bytes ckx = client->makeClientKeyExchange(rig.ctx, kp.pub, 0x0300,
                                              premaster);
    ASSERT_EQ(premaster.size(), 48u);
    EXPECT_EQ(premaster[0], 0x03);
    EXPECT_EQ(premaster[1], 0x00);

    // Synchronous provider: Parked resolves at submit time.
    ASSERT_EQ(server->processClientKeyExchange(rig.ctx, *kp.priv, ckx),
              ssl::KxStatus::Parked);
    EXPECT_FALSE(server->jobPending());
    EXPECT_STREQ(server->jobLabel(), "rsa_decrypt");
    EXPECT_EQ(server->finishClientKeyExchange(), premaster);
}

TEST(KxRoles, DheRoundTripAgreesOnThePremaster)
{
    KxRig rig;
    const auto &kp = test::testKey1024();
    auto server = ssl::kxFactory(ssl::KxKind::DheRsa).makeServer();
    auto client = ssl::kxFactory(ssl::KxKind::DheRsa).makeClient();

    ASSERT_EQ(server->startServerKeyExchange(rig.ctx, *kp.priv),
              ssl::KxStatus::Parked);
    EXPECT_FALSE(server->jobPending());
    EXPECT_STREQ(server->jobLabel(), "rsa_sign");
    Bytes skx = server->finishServerKeyExchange();

    client->processServerKeyExchange(rig.ctx, kp.pub, skx);
    Bytes client_premaster;
    Bytes ckx = client->makeClientKeyExchange(rig.ctx, kp.pub, 0x0300,
                                              client_premaster);
    ASSERT_FALSE(client_premaster.empty());

    ASSERT_EQ(server->processClientKeyExchange(rig.ctx, *kp.priv, ckx),
              ssl::KxStatus::Done);
    EXPECT_EQ(server->finishClientKeyExchange(), client_premaster);
}

// ---------------------------------------------------------------------
// Negative paths

TEST(KxNegative, TamperedServerKeyExchangeSignatureIsRejected)
{
    KxRig rig;
    const auto &kp = test::testKey1024();
    auto server = ssl::kxFactory(ssl::KxKind::DheRsa).makeServer();
    server->startServerKeyExchange(rig.ctx, *kp.priv);
    Bytes skx = server->finishServerKeyExchange();

    // Flip one bit inside the signature (the tail of the body).
    Bytes tampered = skx;
    tampered.back() ^= 0x01;

    auto client = ssl::kxFactory(ssl::KxKind::DheRsa).makeClient();
    try {
        client->processServerKeyExchange(rig.ctx, kp.pub, tampered);
        FAIL() << "tampered signature accepted";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(),
                  ssl::AlertDescription::HandshakeFailure);
    }
}

TEST(KxNegative, WrongCertificateKeyFailsVerification)
{
    // A valid, untampered flight signed by a *different* key than the
    // one in the certificate the client checks against.
    KxRig rig;
    auto server = ssl::kxFactory(ssl::KxKind::DheRsa).makeServer();
    server->startServerKeyExchange(rig.ctx, *test::testKey512().priv);
    Bytes skx = server->finishServerKeyExchange();

    auto client = ssl::kxFactory(ssl::KxKind::DheRsa).makeClient();
    EXPECT_THROW(client->processServerKeyExchange(
                     rig.ctx, test::testKey1024().pub, skx),
                 ssl::SslError);
}

TEST(KxNegative, ImplausibleDhGroupIsRejected)
{
    // A correctly signed ServerKeyExchange advertising a tiny prime:
    // the signature verifies, the group must still be refused with
    // illegal_parameter.
    KxRig rig;
    const auto &kp = test::testKey1024();

    ssl::ServerKeyExchangeMsg msg;
    msg.p = {0x01, 0x01}; // 257: trivially breakable "group"
    msg.g = {0x02};
    msg.publicValue = {0x02};
    msg.signature = crypto::rsaSign(
        *kp.priv, ssl::serverKxDigest(rig.clientRandom,
                                      rig.serverRandom,
                                      msg.signedParams()));

    auto client = ssl::kxFactory(ssl::KxKind::DheRsa).makeClient();
    try {
        client->processServerKeyExchange(rig.ctx, kp.pub,
                                         msg.encode());
        FAIL() << "implausible group accepted";
    } catch (const ssl::SslError &e) {
        EXPECT_EQ(e.alert(),
                  ssl::AlertDescription::IllegalParameter);
    }
}

TEST(KxNegative, ResumptionExchangesNoKeys)
{
    // The resumption row is a deliberate null object: an abbreviated
    // handshake that reaches any key-exchange step is a state-machine
    // bug, reported as logic_error rather than an alert.
    KxRig rig;
    const auto &kp = test::testKey1024();
    auto server =
        ssl::kxFactory(ssl::KxKind::Resumption).makeServer();
    auto client =
        ssl::kxFactory(ssl::KxKind::Resumption).makeClient();

    EXPECT_FALSE(server->sendsServerKeyExchange());
    EXPECT_FALSE(client->expectsServerKeyExchange());
    EXPECT_THROW(server->startServerKeyExchange(rig.ctx, *kp.priv),
                 std::logic_error);
    EXPECT_THROW(
        server->processClientKeyExchange(rig.ctx, *kp.priv, Bytes()),
        std::logic_error);
    Bytes premaster;
    EXPECT_THROW(client->makeClientKeyExchange(rig.ctx, kp.pub, 0x0300,
                                               premaster),
                 std::logic_error);
}

} // anonymous namespace

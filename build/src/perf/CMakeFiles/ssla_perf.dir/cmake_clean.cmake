file(REMOVE_RECURSE
  "CMakeFiles/ssla_perf.dir/ablation.cc.o"
  "CMakeFiles/ssla_perf.dir/ablation.cc.o.d"
  "CMakeFiles/ssla_perf.dir/cpimodel.cc.o"
  "CMakeFiles/ssla_perf.dir/cpimodel.cc.o.d"
  "CMakeFiles/ssla_perf.dir/enginesim.cc.o"
  "CMakeFiles/ssla_perf.dir/enginesim.cc.o.d"
  "CMakeFiles/ssla_perf.dir/opcount.cc.o"
  "CMakeFiles/ssla_perf.dir/opcount.cc.o.d"
  "CMakeFiles/ssla_perf.dir/probe.cc.o"
  "CMakeFiles/ssla_perf.dir/probe.cc.o.d"
  "CMakeFiles/ssla_perf.dir/report.cc.o"
  "CMakeFiles/ssla_perf.dir/report.cc.o.d"
  "libssla_perf.a"
  "libssla_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

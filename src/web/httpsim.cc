#include "web/httpsim.hh"

#include "obs/export.hh"
#include "perf/probe.hh"
#include "util/rng.hh"

namespace ssla::web
{

void
TransactionStats::merge(const TransactionStats &other)
{
    sslTotal += other.sslTotal;
    cryptoTotal += other.cryptoTotal;
    cryptoPublic += other.cryptoPublic;
    cryptoPrivate += other.cryptoPrivate;
    cryptoHash += other.cryptoHash;
    cryptoOther += other.cryptoOther;
    kernelCycles += other.kernelCycles;
    httpdCycles += other.httpdCycles;
    otherCycles += other.otherCycles;
    wireBytes += other.wireBytes;
    packets += other.packets;
    transactions += other.transactions;
    resumedHandshakes += other.resumedHandshakes;
}

double
TransactionStats::total() const
{
    return static_cast<double>(sslTotal) + kernelCycles + httpdCycles +
           otherCycles;
}

struct WebSimulator::Impl
{
    WebSimConfig config;
    std::unique_ptr<crypto::Provider> provider;
    crypto::RsaKeyPair serverKey;
    pki::Certificate certificate;
    ssl::SessionCache sessionCache{256};
    crypto::RandomPool pool;
    ssl::Session lastSession;

    explicit Impl(const WebSimConfig &cfg)
        : config(cfg), provider(crypto::createProvider(cfg.provider)),
          pool(Bytes{0x42})
    {
        Xoshiro256 rng(cfg.seed);
        bn::RngFunc rf = [&rng](uint8_t *out, size_t len) {
            rng.fill(out, len);
        };
        serverKey = crypto::rsaGenerateKey(cfg.rsaBits, rf);

        pki::CertificateInfo info;
        info.serial = 1;
        info.issuer = "SSL Anatomy Test CA";
        info.subject = "www.sslanatomy.test";
        info.notBefore = 0;
        info.notAfter = ~uint64_t(0);
        info.publicKey = serverKey.pub;
        certificate = pki::Certificate::issue(info, *serverKey.priv);
    }
};

WebSimulator::WebSimulator(const WebSimConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

WebSimulator::~WebSimulator() = default;

const crypto::RsaPublicKey &
WebSimulator::serverPublicKey() const
{
    return impl_->serverKey.pub;
}

namespace
{

/** Crypto probe names per Figure 2 / Table 3 category (server side). */
const std::vector<std::string> publicKeyProbes = {
    "rsa_private_decryption",
};
const std::vector<std::string> privateKeyProbes = {
    "pri_encryption",
    "pri_decryption",
};
const std::vector<std::string> hashProbes = {
    "mac",           "finish_mac",      "init_finished_mac",
    "final_finish_mac", "gen_master_secret", "gen_key_block",
    "cert_verify_mac",
};
const std::vector<std::string> otherCryptoProbes = {
    "rand_pseudo_bytes",
    "x509_issue",
};

/**
 * Route one parsed request: /metrics serves the Prometheus text
 * exposition of the configured registry, anything else serves
 * @p file_size bytes of page data.
 */
HttpResponse
serveRequest(const WebSimConfig &config, const HttpRequest &request,
             size_t file_size)
{
    HttpResponse resp;
    resp.headers["Server"] = "ssl-anatomy-sim/1.0";
    if (request.path == "/metrics") {
        obs::MetricsRegistry &reg =
            config.metricsRegistry ? *config.metricsRegistry
                                   : obs::MetricsRegistry::global();
        const std::string text = obs::prometheusText(reg.snapshot());
        resp.headers["Content-Type"] = "text/plain; version=0.0.4";
        resp.body.assign(text.begin(), text.end());
    } else {
        resp.body.assign(file_size, 'a');
    }
    return resp;
}

} // anonymous namespace

TransactionStats
WebSimulator::runTransaction(size_t file_size, bool resume_session)
{
    return runSession(1, file_size, resume_session);
}

HttpResponse
WebSimulator::fetch(const std::string &path, size_t file_size)
{
    Impl &im = *impl_;
    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = im.certificate;
    scfg.privateKey = im.serverKey.priv;
    scfg.suites = {im.config.suite};
    scfg.sessionCache = &im.sessionCache;
    scfg.randomPool = &im.pool;
    scfg.provider = im.provider.get();

    ssl::ClientConfig ccfg;
    ccfg.suites = {im.config.suite};
    ccfg.randomPool = &im.pool;
    ccfg.provider = im.provider.get();

    ssl::SslServer server(scfg, wires.serverEnd());
    ssl::SslClient client(ccfg, wires.clientEnd());
    ssl::runLockstep(client, server);

    HttpRequest req;
    req.path = path;
    req.headers["Host"] = "www.sslanatomy.test";
    client.writeApplicationData(req.encode());

    auto data = server.readApplicationData();
    if (!data)
        throw std::runtime_error("web sim: request lost");
    HttpResponse resp = serveRequest(im.config,
                                     HttpRequest::parse(*data),
                                     file_size);
    server.writeApplicationData(resp.encode());
    server.close();

    // Client side: drain until the response parses completely.
    Bytes response_wire;
    HttpResponse parsed;
    for (;;) {
        auto chunk = client.readApplicationData();
        if (chunk)
            append(response_wire, *chunk);
        try {
            parsed = HttpResponse::parse(response_wire);
            break;
        } catch (const std::runtime_error &) {
            if (!chunk)
                throw; // transport drained, response still short
        }
    }
    client.close();
    server.readApplicationData(); // observe the close_notify
    return parsed;
}

TransactionStats
WebSimulator::runSession(size_t requests, size_t file_size,
                         bool resume_session)
{
    Impl &im = *impl_;
    TransactionStats stats;
    stats.transactions = requests;

    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = im.certificate;
    scfg.privateKey = im.serverKey.priv;
    scfg.suites = {im.config.suite};
    scfg.sessionCache = &im.sessionCache;
    scfg.randomPool = &im.pool;
    scfg.provider = im.provider.get();

    ssl::ClientConfig ccfg;
    ccfg.suites = {im.config.suite};
    ccfg.randomPool = &im.pool;
    ccfg.provider = im.provider.get();
    if (resume_session && im.lastSession.valid())
        ccfg.resumeSession = im.lastSession;

    perf::PerfContext ctx;
    uint64_t server_cycles = 0;

    // Server construction is the paper's handshake step 0.
    std::unique_ptr<ssl::SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        uint64_t t0 = rdcycles();
        server = std::make_unique<ssl::SslServer>(scfg,
                                                  wires.serverEnd());
        server_cycles += rdcycles() - t0;
    }
    ssl::SslClient client(ccfg, wires.clientEnd());

    // Lockstep handshake; only server work runs under the context.
    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            progress |= server->advance();
            server_cycles += rdcycles() - t0;
        }
        if (!progress)
            throw std::runtime_error("web sim: handshake deadlock");
    }
    if (server->resumed())
        stats.resumedHandshakes = 1;

    // Keep-alive request/response exchanges over one connection.
    for (size_t r = 0; r < requests; ++r) {
        HttpRequest req;
        req.path = "/index.html";
        req.headers["Host"] = "www.sslanatomy.test";
        client.writeApplicationData(req.encode());

        // Server: read request, serve the page.
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            auto data = server->readApplicationData();
            if (!data)
                throw std::runtime_error("web sim: request lost");
            HttpRequest parsed = HttpRequest::parse(*data);
            HttpResponse resp = serveRequest(im.config, parsed,
                                             file_size);
            server->writeApplicationData(resp.encode());
            if (r + 1 == requests)
                server->close();
            server_cycles += rdcycles() - t0;
        }

        // Client: drain records until the response parses completely.
        Bytes response_wire;
        HttpResponse resp;
        for (;;) {
            auto chunk = client.readApplicationData();
            if (chunk)
                append(response_wire, *chunk);
            try {
                resp = HttpResponse::parse(response_wire);
                break;
            } catch (const std::runtime_error &) {
                if (!chunk)
                    throw; // transport drained, response still short
            }
        }
        if (resp.body.size() != file_size)
            throw std::runtime_error("web sim: short response");
    }
    client.close();
    {
        perf::ContextScope scope(&ctx);
        uint64_t t0 = rdcycles();
        server->readApplicationData(); // observe the close_notify
        server_cycles += rdcycles() - t0;
    }

    im.lastSession = client.session();

    // Measured accounting.
    stats.sslTotal = server_cycles;
    stats.cryptoPublic = ctx.cyclesFor(publicKeyProbes);
    stats.cryptoPrivate = ctx.cyclesFor(privateKeyProbes);
    stats.cryptoHash = ctx.cyclesFor(hashProbes);
    stats.cryptoOther = ctx.cyclesFor(otherCryptoProbes);
    stats.cryptoTotal = stats.cryptoPublic + stats.cryptoPrivate +
                        stats.cryptoHash + stats.cryptoOther;

    // Modeled accounting.
    TrafficShape traffic;
    traffic.wireBytes =
        wires.clientBytesSent() + wires.serverBytesSent();
    traffic.packets = estimatePackets(traffic.wireBytes,
                                      im.config.model);
    traffic.connections = 1;
    traffic.requests = requests;
    ModeledCycles modeled = modelNonSslCycles(traffic, im.config.model);
    stats.kernelCycles = modeled.kernel;
    stats.httpdCycles = modeled.httpd;
    stats.otherCycles = modeled.other;
    stats.wireBytes = traffic.wireBytes;
    stats.packets = traffic.packets;
    return stats;
}

TransactionStats
WebSimulator::runTunnel(size_t total_bytes, size_t chunk_bytes)
{
    Impl &im = *impl_;
    if (chunk_bytes == 0)
        throw std::invalid_argument("web sim: chunk_bytes == 0");
    TransactionStats stats;
    stats.transactions = 1;

    ssl::BioPair wires;

    ssl::ServerConfig scfg;
    scfg.certificate = im.certificate;
    scfg.privateKey = im.serverKey.priv;
    scfg.suites = {im.config.suite};
    scfg.sessionCache = &im.sessionCache;
    scfg.randomPool = &im.pool;
    scfg.provider = im.provider.get();

    ssl::ClientConfig ccfg;
    ccfg.suites = {im.config.suite};
    ccfg.randomPool = &im.pool;
    ccfg.provider = im.provider.get();

    perf::PerfContext ctx;
    uint64_t server_cycles = 0;

    std::unique_ptr<ssl::SslServer> server;
    {
        perf::ContextScope scope(&ctx);
        uint64_t t0 = rdcycles();
        server = std::make_unique<ssl::SslServer>(scfg,
                                                  wires.serverEnd());
        server_cycles += rdcycles() - t0;
    }
    ssl::SslClient client(ccfg, wires.clientEnd());

    while (!client.handshakeDone() || !server->handshakeDone()) {
        bool progress = client.advance();
        {
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            progress |= server->advance();
            server_cycles += rdcycles() - t0;
        }
        if (!progress)
            throw std::runtime_error("web sim: handshake deadlock");
    }

    // Server -> client streaming: each chunk is handed down as two
    // scattered spans of one shared payload buffer (no per-chunk
    // assembly), the tunnel data plane in its zero-copy shape.
    const Bytes payload(chunk_bytes, 0xd7);
    uint64_t streamed = 0, received = 0;
    while (streamed < total_bytes || received < total_bytes) {
        if (streamed < total_bytes) {
            size_t n = std::min<uint64_t>(chunk_bytes,
                                          total_bytes - streamed);
            perf::ContextScope scope(&ctx);
            uint64_t t0 = rdcycles();
            size_t half = n / 2;
            ConstSpan iov[2] = {
                ConstSpan{payload.data(), half},
                ConstSpan{payload.data() + half, n - half}};
            server->writeApplicationData(iov, 2);
            server_cycles += rdcycles() - t0;
            streamed += n;
        }
        while (auto chunk = client.readApplicationData())
            received += chunk->size();
        if (received > total_bytes)
            throw std::runtime_error("web sim: tunnel over-delivered");
    }

    client.close();
    {
        perf::ContextScope scope(&ctx);
        uint64_t t0 = rdcycles();
        server->readApplicationData(); // observe the close_notify
        server_cycles += rdcycles() - t0;
    }

    stats.sslTotal = server_cycles;
    stats.cryptoPublic = ctx.cyclesFor(publicKeyProbes);
    stats.cryptoPrivate = ctx.cyclesFor(privateKeyProbes);
    stats.cryptoHash = ctx.cyclesFor(hashProbes);
    stats.cryptoOther = ctx.cyclesFor(otherCryptoProbes);
    stats.cryptoTotal = stats.cryptoPublic + stats.cryptoPrivate +
                        stats.cryptoHash + stats.cryptoOther;

    TrafficShape traffic;
    traffic.wireBytes =
        wires.clientBytesSent() + wires.serverBytesSent();
    traffic.packets = estimatePackets(traffic.wireBytes,
                                      im.config.model);
    traffic.connections = 1;
    traffic.requests = 1;
    ModeledCycles modeled = modelNonSslCycles(traffic, im.config.model);
    stats.kernelCycles = modeled.kernel;
    stats.httpdCycles = modeled.httpd;
    stats.otherCycles = modeled.other;
    stats.wireBytes = traffic.wireBytes;
    stats.packets = traffic.packets;
    return stats;
}

TransactionStats
WebSimulator::runWorkload(size_t count, size_t file_size,
                          double resume_fraction)
{
    TransactionStats merged;
    Xoshiro256 rng(impl_->config.seed ^ 0x9e3779b97f4a7c15ULL);
    for (size_t i = 0; i < count; ++i) {
        bool resume = i > 0 && rng.nextDouble() < resume_fraction;
        merged.merge(runTransaction(file_size, resume));
    }
    return merged;
}

} // namespace ssla::web

# Empty dependencies file for ssla_tests.
# This may be replaced when dependencies are built.

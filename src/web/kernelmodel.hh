/**
 * @file
 * Calibrated cost model for the parts of the paper's Table 1 that our
 * in-process harness cannot execute for real: the Linux kernel's TCP
 * stack (the "vmlinux" row), Apache's request handling ("httpd") and
 * the remaining user-space libraries ("other").
 *
 * The paper measured these with Oprofile on a 2.26 GHz Pentium 4
 * running Apache 2.0 over Linux 2.6.6. We replace them with a linear
 * per-connection / per-packet / per-byte cycle model whose constants
 * are calibrated once so the non-SSL module shares at the paper's
 * 1 KB operating point approximate the published ones; every other
 * file size is then a *prediction* of the model, and all SSL/crypto
 * rows are genuinely measured cycles. DESIGN.md documents this
 * substitution.
 */

#ifndef SSLA_WEB_KERNELMODEL_HH
#define SSLA_WEB_KERNELMODEL_HH

#include <cstddef>
#include <cstdint>

namespace ssla::web
{

/** Linear cost-model constants (cycles). */
struct KernelModelParams
{
    // vmlinux: TCP state machine, interrupts, copies, checksums.
    double kernelPerConnection = 200000.0;
    double kernelPerPacket = 15000.0;
    double kernelPerByte = 50.0;

    // httpd: accept/parse/dispatch/log per request plus send loop.
    double httpdPerRequest = 70000.0;
    double httpdPerByte = 4.0;

    // other: libc, threading, allocator.
    double otherPerConnection = 330000.0;
    double otherPerByte = 12.0;

    /** Ethernet MSS used to turn bytes into packet counts. */
    size_t mss = 1460;
};

/** Traffic shape of one simulated transaction. */
struct TrafficShape
{
    uint64_t wireBytes = 0;   ///< TLS record bytes on the wire
    uint64_t packets = 0;     ///< estimated TCP segments (both ways)
    uint64_t connections = 0; ///< TCP connections set up/torn down
    uint64_t requests = 0;    ///< HTTP requests served
};

/** Modeled cycle costs for the non-SSL rows of Table 1. */
struct ModeledCycles
{
    double kernel = 0.0;
    double httpd = 0.0;
    double other = 0.0;
};

/** Estimate the number of TCP segments for @p wire_bytes of payload. */
uint64_t estimatePackets(uint64_t wire_bytes, const KernelModelParams &p);

/** Evaluate the model for one transaction's traffic. */
ModeledCycles modelNonSslCycles(const TrafficShape &traffic,
                                const KernelModelParams &p);

} // namespace ssla::web

#endif // SSLA_WEB_KERNELMODEL_HH

#include "crypto/hmac.hh"

namespace ssla::crypto
{

Hmac::Hmac(DigestAlg alg, const Bytes &key) : alg_(alg)
{
    inner_ = Digest::create(alg);
    size_t block = inner_->blockSize();
    keyBlock_ = key;
    if (keyBlock_.size() > block) {
        keyBlock_ = digestOneShot(alg, keyBlock_);
    }
    keyBlock_.resize(block, 0);
    init();
}

void
Hmac::init()
{
    inner_->init();
    Bytes ipad(keyBlock_.size());
    for (size_t i = 0; i < keyBlock_.size(); ++i)
        ipad[i] = keyBlock_[i] ^ 0x36;
    inner_->update(ipad);
}

void
Hmac::update(const uint8_t *data, size_t len)
{
    inner_->update(data, len);
}

Bytes
Hmac::final()
{
    Bytes tag(tagSize());
    final(tag.data());
    return tag;
}

void
Hmac::final(uint8_t *out)
{
    Bytes inner_digest = inner_->final();
    auto outer = Digest::create(alg_);
    Bytes opad(keyBlock_.size());
    for (size_t i = 0; i < keyBlock_.size(); ++i)
        opad[i] = keyBlock_[i] ^ 0x5c;
    outer->update(opad);
    outer->update(inner_digest);
    outer->final(out);
}

Bytes
Hmac::compute(DigestAlg alg, const Bytes &key, const Bytes &data)
{
    Hmac h(alg, key);
    h.update(data);
    return h.final();
}

} // namespace ssla::crypto

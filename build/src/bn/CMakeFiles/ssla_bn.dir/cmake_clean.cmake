file(REMOVE_RECURSE
  "CMakeFiles/ssla_bn.dir/bignum.cc.o"
  "CMakeFiles/ssla_bn.dir/bignum.cc.o.d"
  "CMakeFiles/ssla_bn.dir/kernels.cc.o"
  "CMakeFiles/ssla_bn.dir/kernels.cc.o.d"
  "CMakeFiles/ssla_bn.dir/modexp.cc.o"
  "CMakeFiles/ssla_bn.dir/modexp.cc.o.d"
  "CMakeFiles/ssla_bn.dir/montgomery.cc.o"
  "CMakeFiles/ssla_bn.dir/montgomery.cc.o.d"
  "CMakeFiles/ssla_bn.dir/prime.cc.o"
  "CMakeFiles/ssla_bn.dir/prime.cc.o.d"
  "libssla_bn.a"
  "libssla_bn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssla_bn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
